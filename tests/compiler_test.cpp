// Compiler lowering tests: scalar expressions, compiled fold kernels
// (differential vs hand-written builtins), key packing, plan construction.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "compiler/key_router.hpp"
#include "compiler/program.hpp"
#include "kvstore/builtin_folds.hpp"
#include "lang/parser.hpp"
#include "trace/simple.hpp"

namespace perfq::compiler {
namespace {

using lang::analyze_source;

TEST(ScalarExpr, EvaluatesFieldArithmetic) {
  const auto ast = lang::parse_expression("tout - tin > 500");
  const ScalarExpr e = ScalarExpr::compile(*ast, base_record_resolver());
  const auto fast =
      trace::RecordBuilder{}.times(Nanos{100}, Nanos{400}).build();
  const auto slow =
      trace::RecordBuilder{}.times(Nanos{100}, Nanos{900}).build();
  EXPECT_FALSE(e.eval_bool(RecordSource({&fast, 1})));
  EXPECT_TRUE(e.eval_bool(RecordSource({&slow, 1})));
}

TEST(ScalarExpr, InfinityComparesEqualForDrops) {
  const auto ast = lang::parse_expression("tout == infinity");
  const ScalarExpr e = ScalarExpr::compile(*ast, base_record_resolver());
  const auto dropped = trace::RecordBuilder{}.dropped_at(Nanos{5}).build();
  const auto fine = trace::RecordBuilder{}.times(Nanos{5}, Nanos{9}).build();
  EXPECT_TRUE(e.eval_bool(RecordSource({&dropped, 1})));
  EXPECT_FALSE(e.eval_bool(RecordSource({&fine, 1})));
}

TEST(ScalarExpr, PrevReferencesReadTheWindow) {
  const auto ast = lang::make_binary(lang::BinaryOp::kAdd,
                                     lang::make_name("prev$tcpseq"),
                                     lang::make_name("prev$payload_len"));
  const ScalarExpr e = ScalarExpr::compile(*ast, base_record_resolver());
  EXPECT_EQ(e.max_depth(), 1);
  const std::vector<PacketRecord> window{
      trace::RecordBuilder{}.seq(1000).len(154, 100).build(),
      trace::RecordBuilder{}.seq(1100).len(154, 100).build(),
  };
  EXPECT_DOUBLE_EQ(e.eval(RecordSource({window.data(), window.size()})), 1100.0);
}

TEST(ScalarExpr, UnknownNameFailsAtCompileTime) {
  const auto ast = lang::parse_expression("mystery + 1");
  EXPECT_THROW((void)ScalarExpr::compile(*ast, base_record_resolver()),
               QueryError);
}

TEST(ScalarExpr, RowSourceResolvesColumns) {
  const auto ast = lang::parse_expression("a / b");
  const Resolver resolver = [](const std::string& name) -> std::optional<Slot> {
    if (name == "a") return Slot{0, 0};
    if (name == "b") return Slot{0, 1};
    return std::nullopt;
  };
  const ScalarExpr e = ScalarExpr::compile(*ast, resolver);
  const std::vector<double> row{10.0, 4.0};
  EXPECT_DOUBLE_EQ(e.eval(RowSource({row.data(), row.size()})), 2.5);
}

// ------------------------------------------------- compiled fold kernels --

/// Differential check: a compiled fold must agree with a builtin kernel on
/// every record of a random workload, both via update() and (when linear)
/// via the affine transform path.
void expect_kernels_agree(const kv::FoldKernel& compiled,
                          const kv::FoldKernel& builtin,
                          std::span<const PacketRecord> records) {
  ASSERT_EQ(compiled.state_dims(), builtin.state_dims());
  kv::StateVector sc = compiled.initial_state();
  kv::StateVector sb = builtin.initial_state();
  for (const auto& rec : records) {
    compiled.update(sc, rec);
    builtin.update(sb, rec);
    for (std::size_t d = 0; d < sc.dims(); ++d) {
      ASSERT_NEAR(sc[d], sb[d], 1e-9 * std::max(1.0, std::abs(sb[d])));
    }
  }
}

std::vector<PacketRecord> tcp_stream(std::uint64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PacketRecord> out;
  std::uint32_t seq = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto payload = static_cast<std::uint32_t>(100 + rng.below(1000));
    trace::RecordBuilder b;
    b.flow_index(1).seq(seq).len(payload + 54, payload);
    b.times(Nanos{static_cast<std::int64_t>(i * 1000)},
            Nanos{static_cast<std::int64_t>(i * 1000 + 1 + rng.below(5000))});
    b.queue(3, static_cast<std::uint32_t>(rng.below(200)));
    if (rng.chance(0.1)) {
      seq += payload + 37;  // out-of-seq gap
    } else {
      seq += payload;
    }
    out.push_back(b.build());
  }
  return out;
}

TEST(FoldCompiler, CompiledOutOfSeqMatchesBuiltin) {
  const auto analysis = analyze_source(R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple
)");
  const CompiledFoldKernel compiled(analysis.folds[0], {});
  EXPECT_EQ(compiled.history_window(), 1u);
  EXPECT_TRUE(kv::is_linear(compiled.linearity()));
  expect_kernels_agree(compiled, kv::OutOfSeqKernel{}, tcp_stream(300, 11));
}

TEST(FoldCompiler, CompiledPercMatchesBuiltin) {
  const auto analysis = analyze_source(R"(
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

SELECT qid, perc GROUPBY qid
)",
                                       {{"K", 100.0}});
  const CompiledFoldKernel compiled(analysis.folds[0], {});
  EXPECT_EQ(compiled.linearity(), kv::Linearity::kLinearConstA);
  expect_kernels_agree(compiled, kv::HighPercentileKernel{100.0},
                       tcp_stream(300, 12));
}

TEST(FoldCompiler, CompiledNonMonotonicMatchesBuiltin) {
  const auto analysis = analyze_source(R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple
)");
  const CompiledFoldKernel compiled(analysis.folds[0], {});
  EXPECT_EQ(compiled.linearity(), kv::Linearity::kNotLinear);
  expect_kernels_agree(compiled, kv::NonMonotonicKernel{}, tcp_stream(300, 13));
}

TEST(FoldCompiler, TransformSelfConsistencyOnCompiledFolds) {
  // Property sweep: compiled transform (A, B) must reproduce update() on
  // every record, including predicated-coefficient folds.
  const auto analysis = analyze_source(R"(
def gear (acc, (pkt_len)):
    if pkt_len > 500:
        acc = 2 * acc
    else:
        acc = acc + 1

SELECT 5tuple, gear GROUPBY 5tuple
)");
  const auto kernel = std::make_shared<CompiledFoldKernel>(analysis.folds[0],
                                                           std::map<std::string,
                                                                    const lang::Expr*>{});
  EXPECT_EQ(kernel->linearity(), kv::Linearity::kLinear);
  const auto records = tcp_stream(200, 17);
  Rng rng(5);
  for (const auto& rec : records) {
    kv::StateVector s(1);
    s[0] = static_cast<double>(rng.below(100));
    EXPECT_TRUE(kv::transform_matches_update(*kernel, s, {&rec, 1}));
  }
}

// ---------------------------------------------------- fold bytecode VM ----

/// The Fig. 2 query corpus as fold definitions (every aggregation the paper
/// lists that lowers to a fold body), used to property-test the bytecode VM.
struct CorpusEntry {
  const char* name;
  const char* source;
};
const CorpusEntry kFig2Corpus[] = {
    {"counter", R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

SELECT 5tuple, counter GROUPBY 5tuple
)"},
    {"bytecounter", R"(
def bytecounter ((cnt, bytes), (pkt_len)):
    cnt = cnt + 1
    bytes = bytes + pkt_len

SELECT 5tuple, bytecounter GROUPBY 5tuple
)"},
    {"ewma", R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)"},
    {"outofseq", R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple
)"},
    {"nonmt", R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple
)"},
    {"perc", R"(
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

SELECT qid, perc GROUPBY qid
)"},
    {"sum_lat", R"(
def sum_lat (lat, (tin, tout)):
    lat = lat + (tout - tin)

SELECT 5tuple, sum_lat GROUPBY 5tuple
)"},
    {"gear", R"(
def gear (acc, (pkt_len)):
    if pkt_len > 500:
        acc = 2 * acc
    else:
        acc = acc + 1

SELECT 5tuple, gear GROUPBY 5tuple
)"},
};

TEST(FoldVm, BytecodeMatchesInterpreterBitForBitAcrossFig2Corpus) {
  // Property: for every corpus fold and every record of a randomized TCP
  // stream, the bytecode VM's update() must equal the AST-walking
  // interpreter's update() BIT FOR BIT (same IEEE ops in the same order;
  // exact double equality, not a tolerance).
  const auto records = tcp_stream(2000, 99);
  for (const CorpusEntry& entry : kFig2Corpus) {
    SCOPED_TRACE(entry.name);
    const auto analysis =
        analyze_source(entry.source, {{"alpha", 0.125}, {"K", 100.0}});
    const CompiledFoldKernel kernel(analysis.folds[0], {});
    EXPECT_GT(kernel.body().vm().instruction_count(), 0u);
    kv::StateVector vm_state = kernel.initial_state();
    kv::StateVector interp_state = kernel.initial_state();
    for (const auto& rec : records) {
      kernel.update(vm_state, rec);
      kernel.update_interpreted(interp_state, rec);
      for (std::size_t d = 0; d < vm_state.dims(); ++d) {
        ASSERT_EQ(vm_state[d], interp_state[d])
            << "VM diverged from interpreter at dim " << d;
      }
    }
  }
}

TEST(FoldVm, ExecutesRowsThroughGenericSource) {
  // The collection layer drives the same bytecode through a RowSource; the
  // VM and interpreter must agree there too (different load path).
  const Resolver resolver = [](const std::string& name) -> std::optional<Slot> {
    if (name == "x") return Slot{0, 0};
    if (name == "y") return Slot{0, 1};
    return std::nullopt;
  };
  const auto analysis = lang::analyze_source(R"(
def blend ((acc, n), (x, y)):
    acc = acc + x * y - acc / (n + 1)
    n = n + 1

SELECT 5tuple, blend GROUPBY 5tuple
)");
  const FoldBody body = FoldBody::compile(analysis.folds[0].def, resolver);
  std::vector<double> vm_state{0.0, 0.0};
  std::vector<double> interp_state{0.0, 0.0};
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> row{static_cast<double>(rng.below(1000)),
                                  static_cast<double>(rng.below(1000))};
    const RowSource source({row.data(), row.size()});
    body.execute({vm_state.data(), vm_state.size()}, source);
    body.execute_interpreted({interp_state.data(), interp_state.size()}, source);
    ASSERT_EQ(vm_state[0], interp_state[0]);
    ASSERT_EQ(vm_state[1], interp_state[1]);
  }
}

// --------------------------------------------------------- program plans --

TEST(ProgramCompiler, PerFlowCountersPlan) {
  const CompiledProgram p =
      compile_source("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip");
  ASSERT_EQ(p.switch_plans.size(), 1u);
  const SwitchQueryPlan& plan = p.switch_plans[0];
  EXPECT_FALSE(plan.prefilter.has_value());
  EXPECT_EQ(plan.key.size(), 2u);
  EXPECT_EQ(plan.key_bytes(), 8);  // two 32-bit IPs
  EXPECT_EQ(plan.kernel->state_dims(), 2u);
  EXPECT_EQ(plan.linearity, kv::Linearity::kLinearConstA);
  EXPECT_EQ(plan.value_columns,
            (std::vector<std::string>{"COUNT", "SUM(pkt_len)"}));
}

TEST(ProgramCompiler, KeyPackUnpackRoundTrip) {
  const CompiledProgram p = compile_source("SELECT COUNT GROUPBY 5tuple");
  const SwitchQueryPlan& plan = p.switch_plans[0];
  EXPECT_EQ(plan.key_bytes(), 13);  // 104 bits, §4's figure

  const auto rec = trace::RecordBuilder{}.flow_index(77).build();
  const kv::Key key = extract_key(plan, rec);
  const std::vector<double> values = unpack_key(plan, key);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_DOUBLE_EQ(values[0], static_cast<double>(rec.pkt.flow.src_ip));
  EXPECT_DOUBLE_EQ(values[1], static_cast<double>(rec.pkt.flow.dst_ip));
  EXPECT_DOUBLE_EQ(values[2], static_cast<double>(rec.pkt.flow.src_port));
  EXPECT_DOUBLE_EQ(values[3], static_cast<double>(rec.pkt.flow.dst_port));
  EXPECT_DOUBLE_EQ(values[4], static_cast<double>(rec.pkt.flow.proto));
}

TEST(ProgramCompiler, WherePushedIntoPrefilter) {
  const CompiledProgram p =
      compile_source("SELECT COUNT GROUPBY 5tuple WHERE proto == TCP");
  ASSERT_TRUE(p.switch_plans[0].prefilter.has_value());
  const auto tcp = trace::RecordBuilder{}.flow_index(1).build();
  auto udp_rec = trace::RecordBuilder{}.flow_index(2).build();
  udp_rec.pkt.flow.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  EXPECT_TRUE(p.switch_plans[0].prefilter->eval_bool(RecordSource({&tcp, 1})));
  EXPECT_FALSE(p.switch_plans[0].prefilter->eval_bool(RecordSource({&udp_rec, 1})));
}

TEST(ProgramCompiler, SelectChainComposesIntoPlan) {
  // A SELECT renaming/filtering between T and the GROUPBY must fold into the
  // plan: filter conjunction + projected fold argument.
  const CompiledProgram p = compile_source(R"(
R0 = SELECT srcip, dstip, srcport, dstport, proto, pkt_len FROM T WHERE pkt_len > 100
R1 = SELECT COUNT, SUM(pkt_len) FROM R0 GROUPBY 5tuple WHERE proto == TCP
)");
  ASSERT_EQ(p.switch_plans.size(), 1u);
  const SwitchQueryPlan& plan = p.switch_plans[0];
  ASSERT_TRUE(plan.prefilter.has_value());
  auto small = trace::RecordBuilder{}.flow_index(1).len(64, 10).build();
  auto large = trace::RecordBuilder{}.flow_index(1).len(500, 446).build();
  EXPECT_FALSE(plan.prefilter->eval_bool(RecordSource({&small, 1})));
  EXPECT_TRUE(plan.prefilter->eval_bool(RecordSource({&large, 1})));
}

TEST(ProgramCompiler, MixedComputedKeyClearsFastPathEntirely) {
  // Regression: a plan mixing one plain-field key component with one
  // expression component must clear fast_key_fields entirely — a partial
  // fast-field list would pack a key from the wrong components. Both the
  // engine's extraction and the sharded dispatcher's routing key off this.
  const CompiledProgram mixed =
      compile_source("SELECT COUNT GROUPBY srcip, pkt_len / 256");
  ASSERT_EQ(mixed.switch_plans.size(), 1u);
  const SwitchQueryPlan& plan = mixed.switch_plans[0];
  ASSERT_EQ(plan.key.size(), 2u);
  EXPECT_TRUE(plan.fast_key_fields.empty());
  EXPECT_FALSE(plan.key[0].expr.as_slot_load().has_value() &&
               plan.key[1].expr.as_slot_load().has_value());

  // The all-plain twin keeps the fast path.
  const CompiledProgram plain =
      compile_source("SELECT COUNT GROUPBY srcip, pkt_len");
  ASSERT_EQ(plain.switch_plans[0].fast_key_fields.size(), 2u);

  // And extraction matches the expression tree's values: srcip passed
  // through, pkt_len / 256 truncated to an 8-byte unsigned integer.
  const auto rec = trace::RecordBuilder{}.flow_index(3).len(1000, 946).build();
  const kv::Key key = extract_key(plan, rec);
  // The prehashed variant (the sharded worker's computed-key path) must
  // agree bit-for-bit while installing the supplied hash.
  const kv::Key pre = extract_key_prehashed(plan, rec, key.raw_hash());
  EXPECT_TRUE(pre == key);
  EXPECT_EQ(pre.raw_hash(), key.raw_hash());
  const auto values = unpack_key(plan, key);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], static_cast<double>(rec.pkt.flow.src_ip));
  EXPECT_DOUBLE_EQ(values[1],
                   std::floor(static_cast<double>(rec.pkt.pkt_len) / 256.0));
}

TEST(ProgramCompiler, ComputedKeyRejectedForSoftGroupBy) {
  // The collection layer resolves soft-GROUPBY keys by column name against
  // materialized tables; expression keys are only legal on-switch.
  EXPECT_THROW((void)compile_source(R"(
R1 = SELECT 5tuple, COUNT GROUPBY 5tuple
R2 = SELECT COUNT FROM R1 GROUPBY srcip / 256
)"),
               QueryError);
}

TEST(KeyRouter, MatchesExtractKeyBitForBit) {
  // The record-direct router must agree with extract_key exactly: same
  // packed bytes, same cached hash — the dispatcher routes by the router's
  // hash while the worker re-packs via make_key.
  const CompiledProgram p = compile_source("SELECT COUNT GROUPBY 5tuple");
  const auto router = KeyRouter::make(p.switch_plans[0]);
  ASSERT_TRUE(router.has_value());
  for (std::uint32_t f = 0; f < 200; ++f) {
    const auto rec = trace::RecordBuilder{}.flow_index(f).build();
    const kv::Key want = extract_key(p.switch_plans[0], rec);
    const std::uint64_t raw = router->raw_hash(rec);
    EXPECT_EQ(raw, want.raw_hash());
    const kv::Key got = router->make_key(rec, raw);
    EXPECT_TRUE(got == want);
    EXPECT_EQ(got.raw_hash(), want.raw_hash());
    EXPECT_EQ(got.hash(0x5eedcafe), want.hash(0x5eedcafe));
  }

  // Computed-key plans are not routable record-direct.
  const CompiledProgram computed =
      compile_source("SELECT COUNT GROUPBY srcip, pkt_len / 256");
  EXPECT_FALSE(KeyRouter::make(computed.switch_plans[0]).has_value());
}

TEST(ProgramCompiler, StreamSelectCompiles) {
  const CompiledProgram p = compile_source(
      "SELECT srcip, qid FROM T WHERE tout - tin > 1ms");
  EXPECT_TRUE(p.switch_plans.empty());
  const CompiledStreamSelect sink = compile_stream_select(p.analysis, 0);
  ASSERT_TRUE(sink.filter.has_value());
  ASSERT_EQ(sink.projections.size(), 2u);
  EXPECT_EQ(sink.projections[0].first, "srcip");
}

TEST(ProgramCompiler, SubstituteNamesHandlesPrev) {
  const auto binding = lang::parse_expression("tcpseq + 1");
  const std::map<std::string, const lang::Expr*> bindings{
      {"myseq", binding.get()}};
  // "prev$" names are internal (not lexable); build the expression directly.
  const auto expr = lang::make_binary(lang::BinaryOp::kAdd,
                                      lang::make_name("prev$myseq"),
                                      lang::make_name("myseq"));
  const auto out = substitute_names(*expr, bindings);
  EXPECT_EQ(lang::to_string(*out), "prev$tcpseq + 1 + (tcpseq + 1)");
}

}  // namespace
}  // namespace perfq::compiler
