// Federated merge correctness: §3.2's mergeability analysis lifted from one
// switch's cache/backing split to a fabric of independent stores.
//
// Three properties are pinned here, differentially and bit-for-bit:
//
//   1. Classification — every builtin kernel lands in the documented
//      MergeCapability class (additive / associative / single-source).
//   2. Merge-order determinism — the FederatedStore's reduced result is
//      BYTE-identical no matter which order sources are absorbed in:
//      shuffled, incremental (reads interleaved between absorbs), batched,
//      and with re-absorbed (replaced) sources.
//   3. Exactness — additive and associative kernels reduce to exactly the
//      value of one unbounded reference table fed every record, however the
//      records interleave across sources; single-source kernels are exact
//      when each key's stream lives on one source, and keys that straddle
//      sources are invalidated with one correct segment per source.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/combined.hpp"
#include "kvstore/federated.hpp"
#include "kvstore/kvstore.hpp"
#include "trace/simple.hpp"

namespace perfq::kv {
namespace {

Key key_for(const PacketRecord& rec) {
  const auto bytes = rec.pkt.flow.to_bytes();
  return Key{std::span<const std::byte>{bytes.data(), bytes.size()}};
}

std::uint32_t flow_of(const PacketRecord& rec) {
  return rec.pkt.flow.src_ip - 0x0A000000u;  // inverse of flow_index()
}

/// Random records over `flows` keys (same recipe as kvstore_merge_test).
std::vector<PacketRecord> random_records(std::uint64_t count,
                                         std::uint32_t flows,
                                         std::uint64_t seed,
                                         double drop_prob = 0.02) {
  Rng rng(seed);
  std::vector<PacketRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.below(flows));
    const auto t = static_cast<std::int64_t>(i) * 1000;
    trace::RecordBuilder b;
    b.flow_index(f).uniq(i + 1);
    const auto len = static_cast<std::uint32_t>(64 + rng.below(1400));
    b.len(len, len - 54);
    if (rng.chance(drop_prob)) {
      b.dropped_at(Nanos{t});
    } else {
      b.times(Nanos{t},
              Nanos{t + 1 + static_cast<std::int64_t>(rng.below(100000))});
    }
    b.queue(static_cast<std::uint32_t>(f % 7),
            static_cast<std::uint32_t>(rng.below(64)));
    b.seq(static_cast<std::uint32_t>(i * 1460));
    out.push_back(b.build());
  }
  return out;
}

/// Partition a record stream across `n` per-source stores by `pick(rec, i)`,
/// then flush and export each one. Tiny caches keep eviction pressure high
/// so exports carry real backing-store state, not just cache residue.
struct Sources {
  std::vector<std::unique_ptr<KeyValueStore>> stores;
  std::vector<StoreExport> exports;
};

template <typename Pick>
Sources partition(const std::vector<PacketRecord>& records, std::size_t n,
                  std::shared_ptr<const FoldKernel> kernel, Pick&& pick) {
  Sources out;
  std::vector<std::uint64_t> counts(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    out.stores.push_back(std::make_unique<KeyValueStore>(
        CacheGeometry::set_associative(16, 2), kernel));
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::size_t s = pick(records[i], i) % n;
    out.stores[s]->process(key_for(records[i]), records[i]);
    ++counts[s];
  }
  const Nanos end{static_cast<std::int64_t>(records.size()) * 1000};
  for (std::size_t s = 0; s < n; ++s) {
    out.stores[s]->flush(end);
    out.exports.push_back(StoreExport{"q", counts[s], end,
                                      out.stores[s]->backing().export_entries()});
  }
  return out;
}

/// The federated result flattened to a canonical, byte-comparable form:
/// rows sorted by key bytes, values as raw double bit patterns (so +0/-0
/// or NaN drift would fail the comparison, not slip through ==).
using Row = std::tuple<std::string, std::vector<std::uint64_t>, bool>;

std::vector<Row> rows_of(const FederatedStore& fed) {
  std::vector<Row> rows;
  fed.for_each([&](const Key& key, const StateVector& value, bool valid) {
    const auto kb = key.bytes();
    std::string ks(reinterpret_cast<const char*>(kb.data()), kb.size());
    std::vector<std::uint64_t> bits(value.dims());
    for (std::size_t d = 0; d < value.dims(); ++d) {
      const double v = value[d];
      std::memcpy(&bits[d], &v, sizeof(double));
    }
    rows.emplace_back(std::move(ks), std::move(bits), valid);
  });
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct FedCase {
  std::string name;
  std::shared_ptr<const FoldKernel> kernel;
  MergeCapability expected;
};

std::vector<FedCase> fed_cases() {
  return {
      {"count", std::make_shared<CountKernel>(), MergeCapability::kAdditive},
      {"sum_len", std::make_shared<SumKernel>(FieldId::kPktLen),
       MergeCapability::kAdditive},
      {"count_sum", std::make_shared<CountSumKernel>(),
       MergeCapability::kAdditive},
      {"combined_count_sum",
       std::make_shared<CombinedKernel>(
           std::vector<std::shared_ptr<const FoldKernel>>{
               std::make_shared<CountKernel>(),
               std::make_shared<SumKernel>(FieldId::kPktLen)}),
       MergeCapability::kAdditive},
      {"max_qsize",
       std::make_shared<ExtremumKernel>(FieldId::kQsize,
                                        ExtremumKernel::Mode::kMax),
       MergeCapability::kAssociative},
      {"ewma", std::make_shared<EwmaKernel>(0.25),
       MergeCapability::kSingleSource},
      {"nonmt", std::make_shared<NonMonotonicKernel>(),
       MergeCapability::kSingleSource},
  };
}

TEST(FederatedClassification, BuiltinKernels) {
  for (const auto& c : fed_cases()) {
    EXPECT_EQ(merge_capability(*c.kernel), c.expected) << c.name;
  }
  // A combination is only as mergeable as its weakest member.
  const CombinedKernel mixed{std::vector<std::shared_ptr<const FoldKernel>>{
      std::make_shared<CountKernel>(), std::make_shared<EwmaKernel>(0.5)}};
  EXPECT_EQ(merge_capability(mixed), MergeCapability::kSingleSource);
}

class FederatedMergeOrder : public ::testing::TestWithParam<FedCase> {};

/// Core merge-order property: every absorb schedule yields byte-identical
/// rows — including incremental schedules where reads happen between
/// absorbs, and schedules that re-absorb a source (replacement semantics).
TEST_P(FederatedMergeOrder, ByteIdenticalUnderAnyAbsorbOrder) {
  const auto& c = GetParam();
  const auto records = random_records(20000, 300, /*seed=*/0xFED0 + 7);
  constexpr std::size_t kSources = 5;
  auto srcs = partition(records, kSources, c.kernel,
                        [](const PacketRecord& rec, std::size_t) {
                          return static_cast<std::size_t>(rec.pkt.pkt_uniq);
                        });

  // Canonical: absorb in ascending source id, read once.
  FederatedStore canonical{c.kernel};
  for (std::size_t s = 0; s < kSources; ++s) {
    canonical.absorb(static_cast<std::uint32_t>(s), srcs.exports[s]);
  }
  const auto want = rows_of(canonical);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(canonical.records(), records.size());
  EXPECT_EQ(canonical.source_count(), kSources);

  // Shuffled batch orders.
  Rng rng(0xBEEF);
  std::vector<std::size_t> order{0, 1, 2, 3, 4};
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    FederatedStore fed{c.kernel};
    for (const std::size_t s : order) {
      fed.absorb(static_cast<std::uint32_t>(s), srcs.exports[s]);
    }
    EXPECT_EQ(rows_of(fed), want) << c.name << " round " << round;
  }

  // Incremental: force a full reduction between every absorb. The reduced
  // view must converge to the same bytes as the batched schedule.
  FederatedStore incremental{c.kernel};
  for (std::size_t s = kSources; s > 0; --s) {
    incremental.absorb(static_cast<std::uint32_t>(s - 1), srcs.exports[s - 1]);
    (void)rows_of(incremental);
    (void)incremental.accuracy();
  }
  EXPECT_EQ(rows_of(incremental), want) << c.name << " incremental";

  // Re-absorb: a source's later export REPLACES its earlier contribution,
  // so double-absorbing the same export is a no-op.
  FederatedStore replayed{c.kernel};
  replayed.absorb(0, srcs.exports[0]);
  for (std::size_t s = 0; s < kSources; ++s) {
    replayed.absorb(static_cast<std::uint32_t>(s), srcs.exports[s]);
  }
  replayed.absorb(2, srcs.exports[2]);
  EXPECT_EQ(rows_of(replayed), want) << c.name << " re-absorb";
  EXPECT_EQ(replayed.records(), records.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, FederatedMergeOrder, ::testing::ValuesIn(fed_cases()),
    [](const auto& info) { return info.param.name; });

/// Additive + associative kernels: the federated reduction over arbitrarily
/// interleaved per-source streams equals an unbounded reference table fed
/// every record — bit-for-bit (counters and sums of integer-valued fields;
/// extremum merge picks one of the observed values verbatim).
TEST(FederatedExactness, MergeableKernelsMatchGlobalReference) {
  for (const auto& c : fed_cases()) {
    if (c.expected == MergeCapability::kSingleSource) continue;
    const auto records = random_records(25000, 400, /*seed=*/0x51AB);
    auto srcs = partition(records, 4, c.kernel,
                          [](const PacketRecord&, std::size_t i) { return i; });

    ReferenceStore reference{c.kernel};
    for (const auto& rec : records) reference.process(key_for(rec), rec);

    FederatedStore fed{c.kernel};
    for (std::size_t s = 0; s < srcs.exports.size(); ++s) {
      fed.absorb(static_cast<std::uint32_t>(s), srcs.exports[s]);
    }
    ASSERT_EQ(fed.key_count(), reference.key_count()) << c.name;
    const AccuracyStats acc = fed.accuracy();
    EXPECT_EQ(acc.valid_keys, acc.total_keys) << c.name;

    std::size_t checked = 0;
    reference.for_each([&](const Key& key, const StateVector& want) {
      const auto got = fed.read(key);
      ASSERT_TRUE(got.has_value()) << c.name;
      ASSERT_EQ(got->dims(), want.dims());
      for (std::size_t d = 0; d < want.dims(); ++d) {
        EXPECT_EQ((*got)[d], want[d])
            << c.name << " dim " << d << " not bit-exact";
      }
      EXPECT_TRUE(fed.valid(key));
      EXPECT_TRUE(fed.segments(key).empty());
      ++checked;
    });
    EXPECT_EQ(checked, reference.key_count());
  }
}

/// Single-source kernels stay exact when every key's stream lives on one
/// source — the partition a fabric induces when the key includes a
/// switch-owned dimension (e.g. GROUPBY qid).
TEST(FederatedExactness, SingleSourceExactWhenKeysDoNotStraddle) {
  const auto kernel = std::make_shared<EwmaKernel>(0.25);
  const auto records = random_records(20000, 256, /*seed=*/0xE13A,
                                      /*drop_prob=*/0.0);
  auto srcs = partition(records, 4, kernel,
                        [](const PacketRecord& rec, std::size_t) {
                          return static_cast<std::size_t>(flow_of(rec));
                        });

  ReferenceStore reference{kernel};
  for (const auto& rec : records) reference.process(key_for(rec), rec);

  FederatedStore fed{kernel};
  for (std::size_t s = 0; s < srcs.exports.size(); ++s) {
    fed.absorb(static_cast<std::uint32_t>(s), srcs.exports[s]);
  }
  ASSERT_EQ(fed.key_count(), reference.key_count());
  const AccuracyStats acc = fed.accuracy();
  EXPECT_EQ(acc.valid_keys, acc.total_keys);

  reference.for_each([&](const Key& key, const StateVector& want) {
    const auto got = fed.read(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(fed.valid(key));
    // Bit-exact pass-through of the owning source's own value. The key's
    // first four bytes are the big-endian src_ip (0x0A000000 + flow index).
    const auto kb = key.bytes();
    std::uint32_t ip = 0;
    for (int b = 0; b < 4; ++b) {
      ip = (ip << 8) | std::to_integer<std::uint32_t>(kb[b]);
    }
    const std::size_t owner = (ip - 0x0A000000u) % srcs.stores.size();
    const StateVector* own = srcs.stores[owner]->read(key);
    ASSERT_NE(own, nullptr);
    for (std::size_t d = 0; d < want.dims(); ++d) {
      EXPECT_EQ((*got)[d], (*own)[d]) << "pass-through must be bit-exact";
      // ...which is itself the §3.2-exact per-stream EWMA (ULP-close to a
      // straight reference: the backing merge recomposes affine pieces).
      const double rel = std::abs((*got)[d] - want[d]) /
                         std::max(1.0, std::abs(want[d]));
      EXPECT_LT(rel, 1e-9);
    }
  });
}

/// Keys that DO straddle sources under a single-source kernel: invalidated,
/// with one synthesized segment per source whose value is that source's own
/// (exact) per-stream result — §3.2's escape hatch at fabric scope.
TEST(FederatedExactness, StraddlingKeysInvalidatedWithPerSourceSegments) {
  const auto kernel = std::make_shared<EwmaKernel>(0.5);
  const auto records = random_records(6000, 40, /*seed=*/0xDEAD,
                                      /*drop_prob=*/0.0);
  constexpr std::size_t kSources = 3;
  std::vector<std::map<std::string, std::size_t>> seen_by(kSources);
  auto srcs = partition(records, kSources, kernel,
                        [&](const PacketRecord& rec, std::size_t i) {
                          const std::size_t s = i % kSources;
                          const Key key = key_for(rec);  // bytes() views the Key
                          const auto kb = key.bytes();
                          ++seen_by[s][std::string(
                              reinterpret_cast<const char*>(kb.data()),
                              kb.size())];
                          return s;
                        });

  FederatedStore fed{kernel};
  for (std::size_t s = 0; s < kSources; ++s) {
    fed.absorb(static_cast<std::uint32_t>(s), srcs.exports[s]);
  }

  std::size_t straddlers = 0;
  fed.for_each([&](const Key& key, const StateVector&, bool valid) {
    const auto kb = key.bytes();
    const std::string ks(reinterpret_cast<const char*>(kb.data()), kb.size());
    std::size_t owners = 0;
    std::uint64_t packets = 0;
    for (const auto& m : seen_by) {
      if (const auto it = m.find(ks); it != m.end()) {
        ++owners;
        packets += it->second;
      }
    }
    ASSERT_GE(owners, 1u);
    EXPECT_EQ(valid, owners == 1) << "validity must track source spread";
    const auto segs = fed.segments(key);
    if (owners == 1) {
      EXPECT_TRUE(segs.empty());
    } else {
      ++straddlers;
      ASSERT_EQ(segs.size(), owners)
          << "one synthesized segment per contributing source";
      std::uint64_t seg_packets = 0;
      for (const auto& seg : segs) seg_packets += seg.packets;
      EXPECT_EQ(seg_packets, packets);
      // Each segment must be that source's own exact per-stream value.
      std::size_t si = 0;
      for (std::size_t s = 0; s < kSources; ++s) {
        if (seen_by[s].find(ks) == seen_by[s].end()) continue;
        const StateVector* own = srcs.stores[s]->read(key);
        ASSERT_NE(own, nullptr);
        for (std::size_t d = 0; d < own->dims(); ++d) {
          EXPECT_EQ(segs[si].value[d], (*own)[d]);
        }
        ++si;
      }
    }
  });
  EXPECT_GT(straddlers, 20u) << "round-robin must actually straddle keys";
  const AccuracyStats acc = fed.accuracy();
  EXPECT_EQ(acc.total_keys - acc.valid_keys, straddlers);
}

/// Non-linear kernels carry their real per-epoch segments through the
/// federation: the merged segment list is the concatenation of each
/// source's own backing-store segments, in ascending source order.
TEST(FederatedExactness, NonLinearSegmentsConcatenateAcrossSources) {
  const auto kernel = std::make_shared<NonMonotonicKernel>();
  const auto records = random_records(4000, 24, /*seed=*/0xC0DE);
  constexpr std::size_t kSources = 2;
  auto srcs = partition(records, kSources, kernel,
                        [](const PacketRecord&, std::size_t i) { return i; });

  FederatedStore fed{kernel};
  for (std::size_t s = 0; s < kSources; ++s) {
    fed.absorb(static_cast<std::uint32_t>(s), srcs.exports[s]);
  }

  std::size_t multi = 0;
  fed.for_each([&](const Key& key, const StateVector&, bool valid) {
    std::vector<ValueSegment> want;
    std::size_t owners = 0;
    for (std::size_t s = 0; s < kSources; ++s) {
      const auto* segs = srcs.stores[s]->backing().segments(key);
      if (segs == nullptr || segs->empty()) continue;
      ++owners;
      want.insert(want.end(), segs->begin(), segs->end());
    }
    const auto got = fed.segments(key);
    if (owners <= 1 && want.size() <= 1) {
      EXPECT_TRUE(valid);
      return;
    }
    ++multi;
    EXPECT_FALSE(valid);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].start, want[i].start);
      EXPECT_EQ(got[i].end, want[i].end);
      EXPECT_EQ(got[i].packets, want[i].packets);
      for (std::size_t d = 0; d < want[i].value.dims(); ++d) {
        EXPECT_EQ(got[i].value[d], want[i].value[d]);
      }
    }
  });
  EXPECT_GT(multi, 10u) << "workload must exercise multi-segment keys";
}

}  // namespace
}  // namespace perfq::kv
