// Switch architecture tests: programmable parser round-trips, TCAM range
// expansion properties, WHERE-to-match lowering, and pipeline equivalence
// with the runtime engine's processing path.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "packet/wire.hpp"
#include "switchsim/pipeline.hpp"
#include "trace/simple.hpp"

namespace perfq::sw {
namespace {

Packet sample_packet(bool tcp) {
  Packet pkt;
  pkt.flow = FiveTuple{ipv4_from_string("192.168.1.5"),
                       ipv4_from_string("10.9.8.7"), 33333, 443,
                       static_cast<std::uint8_t>(tcp ? IpProto::kTcp
                                                     : IpProto::kUdp)};
  pkt.payload_len = 400;
  pkt.pkt_len = 400 + (tcp ? 54 : 42);
  pkt.tcp_seq = tcp ? 123456789 : 0;
  pkt.tcp_flags = tcp ? TcpFlags::kAck : 0;
  pkt.ip_ttl = 61;
  pkt.pkt_uniq = 0x4242;
  return pkt;
}

TEST(Parser, RoundTripsTcpFrames) {
  const Packet pkt = sample_packet(true);
  const auto frame = wire::serialize(pkt);
  const ParserGraph graph = ParserGraph::standard();
  const auto result = graph.parse(frame);
  EXPECT_EQ(result.pkt.flow, pkt.flow);
  EXPECT_EQ(result.pkt.tcp_seq, pkt.tcp_seq);
  EXPECT_EQ(result.pkt.tcp_flags, pkt.tcp_flags);
  EXPECT_EQ(result.pkt.pkt_len, pkt.pkt_len);
  EXPECT_EQ(result.pkt.payload_len, pkt.payload_len);
  EXPECT_EQ(result.pkt.pkt_uniq, pkt.pkt_uniq & 0xFFFF);
  EXPECT_EQ(result.path,
            (std::vector<std::string>{"ethernet", "ipv4", "tcp"}));
}

TEST(Parser, RoundTripsUdpFrames) {
  const Packet pkt = sample_packet(false);
  const auto frame = wire::serialize(pkt);
  const auto result = ParserGraph::standard().parse(frame);
  EXPECT_EQ(result.pkt.flow, pkt.flow);
  EXPECT_EQ(result.path.back(), "udp");
}

TEST(Parser, RejectsTruncatedFrames) {
  const auto frame = wire::serialize(sample_packet(true));
  const std::span<const std::byte> cut{frame.data(), 20};
  EXPECT_THROW((void)ParserGraph::standard().parse(cut), ConfigError);
}

TEST(Parser, RejectsUnknownEtherType) {
  auto frame = wire::serialize(sample_packet(true));
  frame[12] = std::byte{0x86};  // not IPv4
  frame[13] = std::byte{0xDD};
  EXPECT_THROW((void)ParserGraph::standard().parse(frame), ConfigError);
}

TEST(Parser, WireParserAgreesWithGraphParser) {
  for (const bool tcp : {true, false}) {
    const Packet pkt = sample_packet(tcp);
    const auto frame = wire::serialize(pkt);
    const auto via_wire = wire::parse(frame);
    const auto via_graph = ParserGraph::standard().parse(frame);
    EXPECT_EQ(via_wire.pkt.flow, via_graph.pkt.flow);
    EXPECT_EQ(via_wire.header_bytes, via_graph.header_bytes);
  }
}

// ---------------------------------------------------------------- TCAM ----

TEST(Tcam, RangeToPrefixCoversExactlyTheRange) {
  // Property: for many random (lo, hi) ranges, membership via the expanded
  // prefixes equals lo <= v <= hi, for every v in a probe set.
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const int bits = 10;
    const std::uint64_t a = rng.below(1 << bits);
    const std::uint64_t b = rng.below(1 << bits);
    const std::uint64_t lo = std::min(a, b);
    const std::uint64_t hi = std::max(a, b);
    const auto prefixes = range_to_prefixes(FieldId::kSrcPort, lo, hi, bits);
    for (std::uint64_t v = 0; v < (1u << bits); ++v) {
      bool matched = false;
      for (const auto& m : prefixes) {
        if (m.matches(v)) {
          matched = true;
          break;
        }
      }
      ASSERT_EQ(matched, v >= lo && v <= hi)
          << "v=" << v << " range=[" << lo << "," << hi << "]";
    }
  }
}

TEST(Tcam, PrefixCountIsLogarithmic) {
  // Worst case for a b-bit range expansion is 2b-2 prefixes.
  const auto prefixes = range_to_prefixes(FieldId::kSrcPort, 1, 65534, 16);
  EXPECT_LE(prefixes.size(), 30u);
}

TEST(Tcam, PriorityOrderWins) {
  TcamTable table;
  TcamEntry low;
  low.matches = {};  // wildcard
  low.action = 1;
  low.priority = 0;
  TcamEntry high;
  high.matches = {TernaryMatch{FieldId::kProto, 6, 0xFF}};
  high.action = 2;
  high.priority = 10;
  table.install(std::move(low));
  table.install(std::move(high));

  const auto tcp = trace::RecordBuilder{}.flow_index(1).build();
  EXPECT_EQ(table.lookup(tcp), 2u);
  auto udp = trace::RecordBuilder{}.flow_index(1).build();
  udp.pkt.flow.proto = 17;
  EXPECT_EQ(table.lookup(udp), 1u);
}

// ------------------------------------------------------ match compiler ----

std::optional<std::vector<TcamEntry>> lower(const std::string& pred) {
  const auto analysis =
      lang::analyze_source("SELECT COUNT GROUPBY 5tuple WHERE " + pred);
  return compile_where_to_tcam(*analysis.queries[0].def.where, 1);
}

TEST(MatchCompiler, EqualityAndConjunction) {
  const auto entries = lower("proto == TCP and dstport == 443");
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 1u);
  const auto rec443 = trace::RecordBuilder{}
                          .flow(FiveTuple{1, 2, 1000, 443, 6})
                          .build();
  const auto rec80 =
      trace::RecordBuilder{}.flow(FiveTuple{1, 2, 1000, 80, 6}).build();
  EXPECT_TRUE((*entries)[0].matches_record(rec443));
  EXPECT_FALSE((*entries)[0].matches_record(rec80));
}

TEST(MatchCompiler, ComparisonExpandsToPrefixes) {
  const auto entries = lower("qsize > 100");
  ASSERT_TRUE(entries.has_value());
  EXPECT_GT(entries->size(), 1u);
  TcamTable table;
  for (auto e : *entries) table.install(std::move(e));
  EXPECT_TRUE(table.lookup(
      trace::RecordBuilder{}.queue(0, 101).build()).has_value());
  EXPECT_FALSE(table.lookup(
      trace::RecordBuilder{}.queue(0, 100).build()).has_value());
}

TEST(MatchCompiler, DropPredicateUsesSaturatedInfinity) {
  const auto entries = lower("tout == infinity");
  ASSERT_TRUE(entries.has_value());
  TcamTable table;
  for (auto e : *entries) table.install(std::move(e));
  EXPECT_TRUE(table.lookup(
      trace::RecordBuilder{}.dropped_at(Nanos{10}).build()).has_value());
  EXPECT_FALSE(table.lookup(
      trace::RecordBuilder{}.times(Nanos{1}, Nanos{2}).build()).has_value());
}

TEST(MatchCompiler, ArithmeticPredicatesFallBack) {
  // `tout - tin > 1ms` needs an ALU; not TCAM-expressible.
  EXPECT_FALSE(lower("tout - tin > 1000000").has_value());
}

TEST(MatchCompiler, NotEqualSplitsIntoTwoRanges) {
  const auto entries = lower("srcport != 80");
  ASSERT_TRUE(entries.has_value());
  TcamTable table;
  for (auto e : *entries) table.install(std::move(e));
  EXPECT_FALSE(table.lookup(trace::RecordBuilder{}
                                .flow(FiveTuple{1, 2, 80, 9, 6})
                                .build())
                   .has_value());
  EXPECT_TRUE(table.lookup(trace::RecordBuilder{}
                               .flow(FiveTuple{1, 2, 81, 9, 6})
                               .build())
                  .has_value());
}

// -------------------------------------------------------------- pipeline --

TEST(Pipeline, FrameInStateOutMatchesEngineSemantics) {
  // Drive the architectural pipeline with raw frames; its KV state must
  // equal processing the equivalent records directly.
  const auto program = compiler::compile_source(
      "SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple WHERE proto == TCP");
  SwitchPipeline pipeline(program, kv::CacheGeometry::set_associative(64, 8));

  Rng rng(33);
  kv::ReferenceStore reference(program.switch_plans[0].kernel);
  for (int i = 0; i < 500; ++i) {
    Packet pkt = sample_packet(rng.chance(0.8));
    pkt.flow.src_port = static_cast<std::uint16_t>(1000 + rng.below(16));
    const auto frame = wire::serialize(pkt);
    QueueMetadata meta;
    meta.qid = 1;
    meta.tin = Nanos{i * 1000};
    meta.tout = Nanos{i * 1000 + 300};
    meta.qsize = static_cast<std::uint32_t>(rng.below(50));
    pipeline.process_frame(frame, meta);

    if (pkt.is_tcp()) {
      // Mirror what the parser reconstructs (pkt_uniq truncates to ip.id).
      PacketRecord rec;
      rec.pkt = pkt;
      rec.pkt.pkt_uniq = pkt.pkt_uniq & 0xFFFF;
      rec.qid = meta.qid;
      rec.tin = meta.tin;
      rec.tout = meta.tout;
      rec.qsize = meta.qsize;
      reference.process(compiler::extract_key(program.switch_plans[0], rec),
                        rec);
    }
  }
  pipeline.flush(Nanos{1'000'000});

  const auto reports = pipeline.report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].tcam) << "proto == TCP must lower to match entries";
  EXPECT_EQ(reports[0].matched + reports[0].filtered, 500u);

  std::size_t checked = 0;
  reference.for_each([&](const kv::Key& key, const kv::StateVector& want) {
    const kv::StateVector* got = pipeline.store(0).read(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ((*got)[0], want[0]);
    EXPECT_EQ((*got)[1], want[1]);
    ++checked;
  });
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(checked, pipeline.store(0).backing().key_count());
}

TEST(Pipeline, AluFallbackForLatencyPredicate) {
  const auto program = compiler::compile_source(
      "SELECT COUNT GROUPBY 5tuple WHERE tout - tin > 1ms");
  SwitchPipeline pipeline(program, kv::CacheGeometry::set_associative(64, 8));
  const auto reports = pipeline.report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].tcam) << "latency predicate needs the ALU fallback";

  const Packet pkt = sample_packet(true);
  const auto frame = wire::serialize(pkt);
  pipeline.process_frame(frame, QueueMetadata{0, Nanos{0}, Nanos{500}, 0});
  pipeline.process_frame(frame, QueueMetadata{0, Nanos{0}, Nanos{2'000'000}, 0});
  EXPECT_EQ(pipeline.report()[0].matched, 1u);
}

}  // namespace
}  // namespace perfq::sw
