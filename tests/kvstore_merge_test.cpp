// Merge correctness: the central claim of §3.2.
//
// For every linear-in-state fold, the split cache+backing-store design must
// produce *exactly* the same per-key values as an unbounded reference table,
// no matter how hostile the eviction pattern. These are differential
// property tests: random workloads, tiny caches (maximum eviction pressure),
// every geometry, every builtin kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "kvstore/builtin_folds.hpp"
#include "kvstore/combined.hpp"
#include "kvstore/kvstore.hpp"
#include "trace/simple.hpp"

namespace perfq::kv {
namespace {

Key key_for(const PacketRecord& rec) {
  const auto bytes = rec.pkt.flow.to_bytes();
  return Key{std::span<const std::byte>{bytes.data(), bytes.size()}};
}

/// Random records over `flows` keys with randomized latencies/lengths/seqs.
std::vector<PacketRecord> random_records(std::uint64_t count, std::uint32_t flows,
                                         std::uint64_t seed,
                                         double drop_prob = 0.02) {
  Rng rng(seed);
  std::vector<PacketRecord> out;
  std::vector<std::uint32_t> next_seq(flows, 0);
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.below(flows));
    const auto t = static_cast<std::int64_t>(i) * 1000;
    trace::RecordBuilder b;
    b.flow_index(f).uniq(i + 1);
    const auto len = static_cast<std::uint32_t>(64 + rng.below(1400));
    b.len(len, len - 54);
    if (rng.chance(drop_prob)) {
      b.dropped_at(Nanos{t});
    } else {
      b.times(Nanos{t}, Nanos{t + 1 + static_cast<std::int64_t>(rng.below(100000))});
    }
    b.queue(0, static_cast<std::uint32_t>(rng.below(64)));
    // Mostly in-order sequence numbers with occasional jumps/repeats.
    std::uint32_t seq = next_seq[f];
    if (rng.chance(0.05)) {
      seq += 1000;  // skip ahead
    } else if (rng.chance(0.05) && next_seq[f] > 1500) {
      seq -= 1500;  // retransmit-ish
    } else {
      next_seq[f] += len - 54;
    }
    b.seq(seq);
    out.push_back(b.build());
  }
  return out;
}

double expect_close(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) / scale;
}

struct MergeCase {
  std::string name;
  std::shared_ptr<const FoldKernel> kernel;
  CacheGeometry geometry;
};

class LinearMergeTest : public ::testing::TestWithParam<MergeCase> {};

TEST_P(LinearMergeTest, SplitStoreMatchesReferenceExactly) {
  const MergeCase& c = GetParam();
  ASSERT_TRUE(is_linear(c.kernel->linearity())) << c.name;

  KeyValueStore split(c.geometry, c.kernel);
  ReferenceStore reference(c.kernel);

  const auto records = random_records(20000, 200, /*seed=*/0xABCD);
  for (const auto& rec : records) {
    const Key key = key_for(rec);
    split.process(key, rec);
    reference.process(key, rec);
  }
  split.flush(Nanos{1'000'000'000});

  EXPECT_GT(split.cache().stats().evictions, 100u)
      << "test must actually stress eviction/merge";

  std::size_t checked = 0;
  reference.for_each([&](const Key& key, const StateVector& want) {
    const StateVector* got = split.read(key);
    ASSERT_NE(got, nullptr) << "key missing from backing store";
    ASSERT_EQ(got->dims(), want.dims());
    for (std::size_t d = 0; d < want.dims(); ++d) {
      EXPECT_LT(expect_close((*got)[d], want[d]), 1e-9)
          << c.name << " dim " << d << ": merged " << (*got)[d] << " vs ref "
          << want[d];
    }
    ++checked;
  });
  EXPECT_EQ(checked, split.backing().key_count());
}

std::vector<MergeCase> merge_cases() {
  std::vector<MergeCase> cases;
  const std::vector<std::pair<std::string, CacheGeometry>> geometries{
      {"hash", CacheGeometry::hash_table(64)},
      {"full", CacheGeometry::fully_associative(64)},
      {"8way", CacheGeometry::set_associative(64, 8)},
  };
  const std::vector<std::pair<std::string, std::shared_ptr<const FoldKernel>>>
      kernels{
          {"count", std::make_shared<CountKernel>()},
          {"sum", std::make_shared<SumKernel>(FieldId::kPktLen)},
          {"count_sum", std::make_shared<CountSumKernel>()},
          {"ewma", std::make_shared<EwmaKernel>(0.125)},
          {"outofseq", std::make_shared<OutOfSeqKernel>()},
          {"perc", std::make_shared<HighPercentileKernel>(32.0)},
          {"combined",
           std::make_shared<CombinedKernel>(
               std::vector<std::shared_ptr<const FoldKernel>>{
                   std::make_shared<CountKernel>(),
                   std::make_shared<EwmaKernel>(0.25),
                   std::make_shared<OutOfSeqKernel>()})},
      };
  for (const auto& [gname, geom] : geometries) {
    for (const auto& [kname, kernel] : kernels) {
      cases.push_back(MergeCase{kname + "_" + gname, kernel, geom});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllGeometries, LinearMergeTest,
                         ::testing::ValuesIn(merge_cases()),
                         [](const ::testing::TestParamInfo<MergeCase>& param) {
                           return param.param.name;
                         });

TEST(MergeEwma, PaperFormulaReproduced) {
  // §3.2 derives: s_correct = s_new + (1-alpha)^N (s_d - s_0). Verify the
  // implementation against a hand-rolled evaluation of that exact formula.
  const double alpha = 0.25;
  auto kernel = std::make_shared<EwmaKernel>(alpha);
  KeyValueStore split(CacheGeometry{1, 1}, kernel);  // 1 slot: evict per key

  const auto r1 = trace::RecordBuilder{}.flow_index(1).times(0_ns, 1000_ns).build();
  const auto r2 = trace::RecordBuilder{}.flow_index(1).times(0_ns, 3000_ns).build();
  const auto other = trace::RecordBuilder{}.flow_index(2).times(0_ns, 500_ns).build();
  const Key k1 = key_for(r1);

  split.process(k1, r1);      // s_d after this epoch: alpha*1000
  split.process(key_for(other), other);  // evicts key 1
  split.process(k1, r2);      // new epoch: s_new = alpha*3000, N = 1
  split.flush(Nanos{1});

  const double sd = alpha * 1000.0;
  const double snew = alpha * 3000.0;
  const double expected = snew + std::pow(1 - alpha, 1) * (sd - 0.0);
  const StateVector* got = split.read(k1);
  ASSERT_NE(got, nullptr);
  EXPECT_NEAR((*got)[0], expected, 1e-12);
}

TEST(MergeOutOfSeq, BoundaryPacketCorrected) {
  // The first packet of a post-eviction epoch evaluates its predicate
  // against a re-initialized lastseq; the merge must repair that using the
  // logged boundary record (footnote 4's bounded history).
  auto kernel = std::make_shared<OutOfSeqKernel>();
  KeyValueStore split(CacheGeometry{1, 1}, kernel);
  ReferenceStore reference(kernel);

  auto mk = [](std::uint32_t flow, std::uint32_t seq, std::uint32_t payload) {
    return trace::RecordBuilder{}
        .flow_index(flow)
        .seq(seq)
        .len(payload + 54, payload)
        .build();
  };
  // Flow 1 sends a perfectly in-order stream, interleaved with flow 2 to
  // force evictions between every packet.
  std::vector<PacketRecord> recs;
  std::uint32_t seq = 1000;
  for (int i = 0; i < 6; ++i) {
    recs.push_back(mk(1, seq, 100));
    seq += 100;
    recs.push_back(mk(2, 5000 + static_cast<std::uint32_t>(i), 50));
  }
  for (const auto& rec : recs) {
    split.process(key_for(rec), rec);
    reference.process(key_for(rec), rec);
  }
  split.flush(Nanos{1});

  const Key k1 = key_for(recs[0]);
  const StateVector* got = split.read(k1);
  const StateVector* want = reference.read(k1);
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_DOUBLE_EQ((*got)[0], (*want)[0]) << "lastseq";
  EXPECT_DOUBLE_EQ((*got)[1], (*want)[1]) << "oos_count";
}

TEST(MergeNonLinear, SegmentsAccumulateAndInvalidate) {
  auto kernel = std::make_shared<NonMonotonicKernel>();
  KeyValueStore split(CacheGeometry{1, 1}, kernel);

  auto mk = [](std::uint32_t flow, std::uint32_t seq) {
    return trace::RecordBuilder{}.flow_index(flow).seq(seq).build();
  };
  const Key k1 = key_for(mk(1, 0));

  split.process(k1, mk(1, 100));
  split.process(key_for(mk(2, 0)), mk(2, 1));  // evict flow 1 (segment 1)
  split.process(k1, mk(1, 50));                // new epoch
  split.flush(Nanos{10});                      // segment 2

  EXPECT_FALSE(split.backing().valid(k1)) << "two segments => invalid";
  const auto* segs = split.backing().segments(k1);
  ASSERT_NE(segs, nullptr);
  EXPECT_EQ(segs->size(), 2u);
  const auto acc = split.backing().accuracy();
  EXPECT_EQ(acc.total_keys, 2u);
  EXPECT_EQ(acc.valid_keys, 1u);  // flow 2 was evicted only once (flush)
  EXPECT_DOUBLE_EQ(acc.accuracy(), 0.5);
}

TEST(MergeNonLinear, SingleEpochKeysStayValid) {
  auto kernel = std::make_shared<NonMonotonicKernel>();
  KeyValueStore split(CacheGeometry::fully_associative(16), kernel);
  const auto records = random_records(100, 8, 7);
  for (const auto& rec : records) split.process(key_for(rec), rec);
  split.flush(Nanos{1});
  EXPECT_DOUBLE_EQ(split.backing().accuracy().accuracy(), 1.0)
      << "no capacity evictions => every key valid";
}

TEST(TransformConsistency, BuiltinsMatchTheirUpdates) {
  // Property: for every linear builtin, A·S + B == update(S) on random input.
  Rng rng(99);
  const auto records = random_records(500, 10, 3);
  const std::vector<std::shared_ptr<const FoldKernel>> kernels{
      std::make_shared<CountKernel>(),
      std::make_shared<SumKernel>(FieldId::kPktLen),
      std::make_shared<CountSumKernel>(),
      std::make_shared<EwmaKernel>(0.5),
      std::make_shared<OutOfSeqKernel>(),
      std::make_shared<HighPercentileKernel>(10.0),
      std::make_shared<SumLatencyKernel>(),
  };
  for (const auto& kernel : kernels) {
    const std::size_t h = kernel->history_window();
    for (std::size_t i = h; i + 1 < records.size(); ++i) {
      StateVector state(kernel->state_dims());
      for (std::size_t d = 0; d < state.dims(); ++d) {
        state[d] = static_cast<double>(rng.below(1000));
      }
      const std::span<const PacketRecord> window{&records[i - h], h + 1};
      EXPECT_TRUE(transform_matches_update(*kernel, state, window))
          << kernel->name() << " at record " << i;
    }
  }
}

}  // namespace
}  // namespace perfq::kv
