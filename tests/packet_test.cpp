// Packet layer: five-tuples, schema reflection, wire round-trips.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "packet/record.hpp"
#include "packet/wire.hpp"

namespace perfq {
namespace {

TEST(FiveTuple, ByteEncodingRoundTrips) {
  const FiveTuple t{ipv4_from_string("1.2.3.4"), ipv4_from_string("5.6.7.8"),
                    12345, 443, 6};
  const auto bytes = t.to_bytes();
  EXPECT_EQ(bytes.size(), 13u);  // 104 bits, the paper's key size
  const FiveTuple back = FiveTuple::from_bytes(bytes);
  EXPECT_EQ(back, t);
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple t{1, 2, 10, 20, 6};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_port, 10u);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, HashDistinguishesNearbyTuples) {
  const FiveTuple a{1, 2, 10, 20, 6};
  FiveTuple b = a;
  b.src_port = 11;
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), FiveTuple{a}.hash());
}

TEST(Ipv4, StringConversions) {
  EXPECT_EQ(ipv4_to_string(0x0A000001), "10.0.0.1");
  EXPECT_EQ(ipv4_from_string("10.0.0.1"), 0x0A000001u);
  EXPECT_THROW((void)ipv4_from_string("300.1.1.1"), ConfigError);
  EXPECT_THROW((void)ipv4_from_string("1.2.3"), ConfigError);
}

TEST(Record, FieldReflectionCoversEverything) {
  for (std::size_t i = 0; i < kNumFields; ++i) {
    const auto id = static_cast<FieldId>(i);
    const auto name = field_name(id);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(field_from_name(name), id);
    EXPECT_GT(field_bits(id), 0);
  }
  EXPECT_FALSE(field_from_name("bogus").has_value());
  EXPECT_EQ(field_from_name("qin"), FieldId::kQsize) << "Fig. 2 alias";
}

TEST(Record, FieldValuesAndDropSentinel) {
  PacketRecord rec;
  rec.pkt.flow = FiveTuple{7, 8, 9, 10, 17};
  rec.pkt.pkt_len = 1500;
  rec.tin = Nanos{100};
  rec.tout = Nanos{400};
  rec.qsize = 12;
  EXPECT_DOUBLE_EQ(field_value(rec, FieldId::kSrcIp), 7.0);
  EXPECT_DOUBLE_EQ(field_value(rec, FieldId::kPktLen), 1500.0);
  EXPECT_DOUBLE_EQ(field_value(rec, FieldId::kTout), 400.0);
  EXPECT_FALSE(rec.dropped());
  EXPECT_EQ(rec.queueing_delay(), Nanos{300});

  rec.tout = Nanos::infinity();
  EXPECT_TRUE(rec.dropped());
  EXPECT_TRUE(std::isinf(field_value(rec, FieldId::kTout)));
  EXPECT_TRUE(rec.queueing_delay().is_infinite());
}

TEST(Record, FiveTupleFieldListMatchesPaper) {
  const auto& fields = five_tuple_fields();
  ASSERT_EQ(fields.size(), 5u);
  int bits = 0;
  for (const auto f : fields) bits += field_bits(f);
  EXPECT_EQ(bits, FiveTuple::kBits);  // 104
}

TEST(Wire, SerializeParseRoundTripTcp) {
  Packet pkt;
  pkt.flow = FiveTuple{0xC0A80101, 0x0A000001, 50000, 80, 6};
  pkt.payload_len = 256;
  pkt.pkt_len = 256 + 54;
  pkt.tcp_seq = 0xDEADBEEF;
  pkt.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;
  pkt.ip_ttl = 63;
  pkt.pkt_uniq = 0x1234;
  const auto frame = wire::serialize(pkt);
  EXPECT_EQ(frame.size(), pkt.pkt_len);
  const auto parsed = wire::parse(frame);
  EXPECT_EQ(parsed.pkt.flow, pkt.flow);
  EXPECT_EQ(parsed.pkt.tcp_seq, pkt.tcp_seq);
  EXPECT_EQ(parsed.pkt.tcp_flags, pkt.tcp_flags);
  EXPECT_EQ(parsed.pkt.payload_len, pkt.payload_len);
  EXPECT_EQ(parsed.pkt.pkt_uniq, 0x1234u);
  EXPECT_EQ(parsed.header_bytes, 14u + 20u + 20u);
}

TEST(Wire, SerializeParseRoundTripUdp) {
  Packet pkt;
  pkt.flow = FiveTuple{1, 2, 53, 5353, 17};
  pkt.payload_len = 100;
  pkt.pkt_len = 100 + 42;
  const auto frame = wire::serialize(pkt);
  const auto parsed = wire::parse(frame);
  EXPECT_EQ(parsed.pkt.flow, pkt.flow);
  EXPECT_EQ(parsed.header_bytes, 14u + 20u + 8u);
}

TEST(Wire, ChecksumValidates) {
  Packet pkt;
  pkt.flow = FiveTuple{123, 456, 7, 8, 6};
  pkt.pkt_len = 54;
  const auto frame = wire::serialize(pkt);
  // Recomputing the checksum over the header with its checksum field in
  // place must yield zero (RFC 1071 verification property).
  const std::span<const std::byte> ip{frame.data() + 14, 20};
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < ip.size(); i += 2) {
    sum += static_cast<std::uint32_t>(
        (std::to_integer<std::uint32_t>(ip[i]) << 8) |
        std::to_integer<std::uint32_t>(ip[i + 1]));
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  EXPECT_EQ(sum, 0xFFFFu);
}

TEST(Wire, MalformedInputRejected) {
  std::vector<std::byte> junk(10, std::byte{0});
  EXPECT_THROW((void)wire::parse(junk), ConfigError);
  Packet pkt;
  pkt.flow.proto = 99;  // neither TCP nor UDP
  pkt.pkt_len = 60;
  EXPECT_THROW((void)wire::parse(wire::serialize(pkt)), ConfigError);
}

TEST(Wire, TryParseReportsEveryErrorWithoutThrowing) {
  wire::ParseError err{};

  // Too short for Eth+IPv4.
  std::vector<std::byte> junk(10, std::byte{0});
  EXPECT_FALSE(wire::try_parse(junk, &err).has_value());
  EXPECT_EQ(err, wire::ParseError::kTruncated);

  Packet pkt;
  pkt.flow = FiveTuple{1, 2, 3, 4, 6};
  pkt.pkt_len = 54;
  auto frame = wire::serialize(pkt);

  // Foreign EtherType.
  auto bad_ethertype = frame;
  bad_ethertype[12] = std::byte{0x86};
  bad_ethertype[13] = std::byte{0xDD};  // IPv6
  EXPECT_FALSE(wire::try_parse(bad_ethertype, &err).has_value());
  EXPECT_EQ(err, wire::ParseError::kUnsupportedEtherType);

  // EtherType says IPv4 but the version nibble disagrees.
  auto bad_version = frame;
  bad_version[14] = std::byte{0x65};
  EXPECT_FALSE(wire::try_parse(bad_version, &err).has_value());
  EXPECT_EQ(err, wire::ParseError::kNotIpv4);

  // Unknown L4 protocol.
  Packet odd;
  odd.flow.proto = 99;
  odd.pkt_len = 60;
  EXPECT_FALSE(wire::try_parse(wire::serialize(odd), &err).has_value());
  EXPECT_EQ(err, wire::ParseError::kUnsupportedProtocol);

  // IPv4 total length smaller than its own headers.
  auto bad_length = frame;
  bad_length[14 + 2] = std::byte{0};
  bad_length[14 + 3] = std::byte{4};
  EXPECT_FALSE(wire::try_parse(bad_length, &err).has_value());
  EXPECT_EQ(err, wire::ParseError::kBadLength);

  // The error pointer is optional.
  EXPECT_FALSE(wire::try_parse(junk).has_value());
  // And the throwing wrapper agrees with the code.
  EXPECT_THROW((void)wire::parse(bad_length), ConfigError);
}

TEST(Wire, TruncatedAtEveryByteOffset) {
  // The truncation contract, exhaustively: every prefix shorter than the
  // header bytes is kTruncated; every prefix covering them parses exactly
  // like the full frame (payload bytes are never read).
  for (const std::uint8_t proto : {std::uint8_t{6}, std::uint8_t{17}}) {
    Packet pkt;
    pkt.flow = FiveTuple{0xC0A80101, 0x0A000001, 50000, 80, proto};
    pkt.payload_len = 64;
    pkt.tcp_seq = 0x12345678;
    pkt.ip_ttl = 61;
    const auto frame = wire::serialize(pkt);
    const auto full = wire::try_parse(frame);
    ASSERT_TRUE(full.has_value());
    const std::size_t header_bytes = full->header_bytes;
    ASSERT_LT(header_bytes, frame.size());

    for (std::size_t len = 0; len <= frame.size(); ++len) {
      const std::span<const std::byte> prefix(frame.data(), len);
      wire::ParseError err{};
      const auto parsed = wire::try_parse(prefix, &err);
      if (len < header_bytes) {
        EXPECT_FALSE(parsed.has_value())
            << "proto " << int(proto) << " len " << len;
        EXPECT_EQ(err, wire::ParseError::kTruncated)
            << "proto " << int(proto) << " len " << len;
      } else {
        ASSERT_TRUE(parsed.has_value())
            << "proto " << int(proto) << " len " << len;
        EXPECT_EQ(parsed->pkt.flow, full->pkt.flow);
        EXPECT_EQ(parsed->pkt.payload_len, full->pkt.payload_len);
        EXPECT_EQ(parsed->header_bytes, header_bytes);
      }
    }
  }
}

}  // namespace
}  // namespace perfq
