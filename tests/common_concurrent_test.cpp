// Concurrency primitives of the sharded runtime: the SPSC record ring, the
// MPSC eviction queue, page-granular (huge-page-advised) allocation, and the
// concurrent sharded backing store. The threaded tests here are the ones the
// CI ThreadSanitizer job gates on.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/hugepage.hpp"
#include "common/mpsc_queue.hpp"
#include "common/spsc_ring.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/sharded_backing_store.hpp"

namespace perfq {
namespace {

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  SpscRing<int> ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  EXPECT_THROW(SpscRing<int>(0), ConfigError);
}

TEST(SpscRing, SingleThreadFifoWithWraparound) {
  SpscRing<int> ring(8);
  int expected = 0;
  int next = 0;
  // Push/pop far more items than the capacity so the cursors wrap the slot
  // array (and, with small masks, exercise the cached-counterpart refresh).
  while (expected < 1000) {
    while (next < 1000 && ring.try_push(int{next})) ++next;
    int got = -1;
    ASSERT_TRUE(ring.try_pop(got));
    EXPECT_EQ(got, expected);
    ++expected;
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, RejectsPushWhenFullAndPopWhenEmpty) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  int got = 0;
  EXPECT_TRUE(ring.try_pop(got));
  EXPECT_TRUE(ring.try_pop(got));
  EXPECT_FALSE(ring.try_pop(got));
}

TEST(SpscRing, TwoThreadsPreserveOrderUnderBulkTransfer) {
  constexpr std::uint64_t kItems = 200'000;
  SpscRing<std::uint64_t> ring(1024);

  std::thread producer([&ring] {
    std::vector<std::uint64_t> batch;
    std::uint64_t next = 0;
    while (next < kItems) {
      batch.clear();
      const std::uint64_t n = std::min<std::uint64_t>(64, kItems - next);
      for (std::uint64_t i = 0; i < n; ++i) batch.push_back(next + i);
      std::span<std::uint64_t> pending(batch);
      while (!pending.empty()) {
        const std::size_t pushed = ring.push_bulk(pending);
        pending = pending.subspan(pushed);
        if (pushed == 0) std::this_thread::yield();
      }
      next += n;
    }
  });

  std::uint64_t expected = 0;
  std::array<std::uint64_t, 48> buf{};
  while (expected < kItems) {
    const std::size_t n = ring.pop_bulk({buf.data(), buf.size()});
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expected) << "ring reordered or corrupted items";
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(MpscQueue, MultiProducerKeepsPerProducerFifo) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscQueue<std::uint64_t> queue;

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      std::vector<std::uint64_t> batch;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        batch.push_back(p * kPerProducer + i);
        if (batch.size() == 128) queue.push_batch(batch);
      }
      queue.push_batch(batch);
    });
  }

  std::vector<std::uint64_t> drained;
  std::vector<std::uint64_t> next_of(kProducers, 0);
  std::uint64_t seen = 0;
  while (seen < kProducers * kPerProducer) {
    if (!queue.drain(drained)) {
      std::this_thread::yield();
      continue;
    }
    for (const std::uint64_t v : drained) {
      const std::uint64_t p = v / kPerProducer;
      const std::uint64_t i = v % kPerProducer;
      ASSERT_EQ(i, next_of[p]) << "producer " << p << " items reordered";
      ++next_of[p];
      ++seen;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(queue.empty());
}

TEST(PageAllocator, BacksVectorsWithAndWithoutHugeAdvice) {
  for (const bool huge : {false, true}) {
    std::vector<int, PageAllocator<int>> v{PageAllocator<int>(huge)};
    v.resize(1 << 20);  // 4 MiB: above the huge-page threshold
    v[0] = 42;
    v[v.size() - 1] = 43;
    EXPECT_EQ(v[0], 42);
    EXPECT_EQ(v[v.size() - 1], 43);
    // mmap'd memory arrives zeroed.
    EXPECT_EQ(v[v.size() / 2], 0);
  }
#if defined(__linux__)
  EXPECT_TRUE(huge_pages_supported());
#endif
}

kv::EvictedValue count_epoch(const kv::Key& key, std::uint64_t count,
                             bool final_flush) {
  kv::EvictedValue ev;
  ev.key = key;
  ev.state = kv::StateVector(1, static_cast<double>(count));
  ev.product = kv::SmallMatrix::identity(1);
  ev.packets = count;
  ev.state_after_h = kv::StateVector(1);
  ev.first_tin = Nanos{0};
  ev.evict_time = Nanos{1000};
  ev.final_flush = final_flush;
  return ev;
}

kv::Key key_of(std::uint64_t id) {
  const std::array<std::byte, 8> bytes{
      std::byte(id >> 56), std::byte(id >> 48), std::byte(id >> 40),
      std::byte(id >> 32), std::byte(id >> 24), std::byte(id >> 16),
      std::byte(id >> 8),  std::byte(id)};
  return kv::Key(std::span<const std::byte>{bytes.data(), bytes.size()});
}

TEST(ShardedBackingStore, ConcurrentAbsorbWithMonitoringReads) {
  // Writers absorb count epochs for disjoint key ranges while a reader
  // polls merged values — the "monitoring applications can pull results
  // while folding continues" contract. The linear merge (A = I for COUNT)
  // must sum every epoch exactly.
  constexpr std::uint64_t kWriters = 4;
  constexpr std::uint64_t kKeysPerWriter = 256;
  constexpr std::uint64_t kEpochsPerKey = 16;
  auto kernel = std::make_shared<kv::CountKernel>();
  kv::ShardedBackingStore store(kernel, 8);

  std::vector<std::thread> writers;
  for (std::uint64_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (std::uint64_t e = 0; e < kEpochsPerKey; ++e) {
        for (std::uint64_t k = 0; k < kKeysPerWriter; ++k) {
          const kv::Key key = key_of(w * kKeysPerWriter + k);
          store.absorb(count_epoch(key, /*count=*/k + 1, e == 0));
        }
      }
    });
  }
  // Concurrent monitoring reads: values are always some prefix-sum of
  // epochs, never torn.
  for (int probe = 0; probe < 1000; ++probe) {
    const auto v = store.read(key_of(probe % (kWriters * kKeysPerWriter)));
    if (v.has_value()) {
      const double count = (*v)[0];
      EXPECT_GE(count, 1.0);
      EXPECT_EQ(count, static_cast<std::uint64_t>(count));
    }
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(store.key_count(), kWriters * kKeysPerWriter);
  EXPECT_EQ(store.writes(), kWriters * kKeysPerWriter * kEpochsPerKey);
  for (std::uint64_t w = 0; w < kWriters; ++w) {
    for (std::uint64_t k = 0; k < kKeysPerWriter; ++k) {
      const auto v = store.read(key_of(w * kKeysPerWriter + k));
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ((*v)[0], static_cast<double>((k + 1) * kEpochsPerKey));
    }
  }
  const kv::AccuracyStats acc = store.accuracy();
  EXPECT_EQ(acc.total_keys, kWriters * kKeysPerWriter);
  EXPECT_DOUBLE_EQ(acc.accuracy(), 1.0);
}

}  // namespace
}  // namespace perfq
