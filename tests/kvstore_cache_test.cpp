// Cache mechanics: geometries, LRU behaviour, eviction accounting (Fig. 4),
// and the tag-probed index: cross-checks against an unordered_map shadow,
// hash decorrelation, and the zero-allocation steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <unordered_map>

#include "common/error.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/cache.hpp"
#include "trace/simple.hpp"

// Counting global allocator: lets tests assert that steady-state
// Cache::process performs zero heap allocations (tag-probed index + pooled
// aux arena). Counts every new/delete in the test binary; tests snapshot the
// counter around the region of interest.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace perfq::kv {
namespace {

Key key_of(std::uint32_t flow) {
  const auto rec = trace::RecordBuilder{}.flow_index(flow).build();
  const auto bytes = rec.pkt.flow.to_bytes();
  return Key{std::span<const std::byte>{bytes.data(), bytes.size()}};
}

PacketRecord rec_of(std::uint32_t flow, std::int64_t t = 0) {
  return trace::RecordBuilder{}
      .flow_index(flow)
      .times(Nanos{t}, Nanos{t + 100})
      .build();
}

std::shared_ptr<const FoldKernel> count_kernel() {
  return std::make_shared<CountKernel>();
}

TEST(CacheGeometry, ThreePaperGeometries) {
  const auto hash = CacheGeometry::hash_table(1024);
  EXPECT_EQ(hash.num_buckets, 1024u);
  EXPECT_EQ(hash.associativity, 1u);

  const auto full = CacheGeometry::fully_associative(1024);
  EXPECT_EQ(full.num_buckets, 1u);
  EXPECT_EQ(full.associativity, 1024u);

  const auto eight = CacheGeometry::set_associative(1024, 8);
  EXPECT_EQ(eight.num_buckets, 128u);
  EXPECT_EQ(eight.associativity, 8u);
  EXPECT_EQ(eight.total_slots(), 1024u);
}

TEST(CacheGeometry, PaperPairArithmetic) {
  // §4: 128-bit pairs; 8 Mbit = 2^16 pairs ... 256 Mbit = 2^21 pairs.
  EXPECT_EQ(pairs_for_mbits(8.0, 128), 1u << 16);
  EXPECT_EQ(pairs_for_mbits(32.0, 128), 1u << 18);
  EXPECT_EQ(pairs_for_mbits(256.0, 128), 1u << 21);
  EXPECT_DOUBLE_EQ(mbits_for_pairs(1u << 18, 128), 32.0);
}

TEST(CacheGeometry, InvalidConfigsRejected) {
  EXPECT_THROW((void)CacheGeometry::hash_table(0), ConfigError);
  EXPECT_THROW((void)CacheGeometry::set_associative(10, 3), ConfigError);
  EXPECT_THROW((void)CacheGeometry::fully_associative(0), ConfigError);
}

TEST(Cache, HitsAndInitializations) {
  Cache cache(CacheGeometry::fully_associative(4), count_kernel());
  cache.process(key_of(1), rec_of(1));
  cache.process(key_of(1), rec_of(1));
  cache.process(key_of(2), rec_of(2));
  EXPECT_EQ(cache.stats().packets, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().initializations, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.occupancy(), 2u);
  const auto v = cache.peek(key_of(1));
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ((*v)[0], 2.0);
}

TEST(Cache, FullyAssociativeEvictsGlobalLru) {
  Cache cache(CacheGeometry::fully_associative(2), count_kernel());
  std::vector<Key> evicted;
  cache.set_eviction_sink([&](EvictedValue&& ev) { evicted.push_back(ev.key); });

  cache.process(key_of(1), rec_of(1));  // LRU order: 1
  cache.process(key_of(2), rec_of(2));  // 1, 2
  cache.process(key_of(1), rec_of(1));  // 2, 1 (1 refreshed)
  cache.process(key_of(3), rec_of(3));  // evicts 2
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key_of(2));
  EXPECT_TRUE(cache.peek(key_of(1)).has_value());
  EXPECT_TRUE(cache.peek(key_of(3)).has_value());
  EXPECT_FALSE(cache.peek(key_of(2)).has_value());
}

TEST(Cache, HashTableEvictsOnCollision) {
  // m = 1: any two keys mapping to one bucket collide; with 1 bucket every
  // distinct key evicts the previous one.
  Cache cache(CacheGeometry{1, 1}, count_kernel());
  std::uint64_t evictions = 0;
  cache.set_eviction_sink([&](EvictedValue&&) { ++evictions; });
  cache.process(key_of(1), rec_of(1));
  cache.process(key_of(2), rec_of(2));
  cache.process(key_of(1), rec_of(1));
  EXPECT_EQ(evictions, 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(Cache, EvictedValueCarriesEpochMetadata) {
  Cache cache(CacheGeometry::fully_associative(1), count_kernel());
  std::vector<EvictedValue> evicted;
  cache.set_eviction_sink([&](EvictedValue&& ev) {
    evicted.push_back(std::move(ev));
  });
  cache.process(key_of(7), rec_of(7, 1000));
  cache.process(key_of(7), rec_of(7, 2000));
  cache.process(key_of(8), rec_of(8, 3000));  // evicts 7
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, key_of(7));
  EXPECT_EQ(evicted[0].packets, 2u);
  EXPECT_DOUBLE_EQ(evicted[0].state[0], 2.0);
  EXPECT_EQ(evicted[0].first_tin, Nanos{1000});
  EXPECT_EQ(evicted[0].evict_time, Nanos{3000});
  EXPECT_FALSE(evicted[0].final_flush);
}

TEST(Cache, FlushEmitsEverythingAndMarksFinal) {
  // Fully associative so 5 keys can never collide into capacity evictions.
  Cache cache(CacheGeometry::fully_associative(8), count_kernel());
  std::uint64_t flushed = 0;
  cache.set_eviction_sink([&](EvictedValue&& ev) {
    if (ev.final_flush) ++flushed;
  });
  for (std::uint32_t f = 0; f < 5; ++f) cache.process(key_of(f), rec_of(f));
  cache.flush(Nanos{99});
  EXPECT_EQ(flushed, 5u);
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_EQ(cache.stats().flushes, 5u);
}

TEST(Cache, ReinsertAfterEvictionStartsFreshEpoch) {
  // §3.2: "a subsequent packet from the evicted key is treated as a packet
  // from a new key".
  Cache cache(CacheGeometry{1, 1}, count_kernel());
  cache.set_eviction_sink([](EvictedValue&&) {});
  cache.process(key_of(1), rec_of(1));
  cache.process(key_of(1), rec_of(1));
  cache.process(key_of(2), rec_of(2));  // evicts 1 (count 2)
  cache.process(key_of(1), rec_of(1));  // fresh epoch
  const auto v = cache.peek(key_of(1));
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ((*v)[0], 1.0);
}

TEST(Cache, SetAssociativeIsolatesBuckets) {
  // With many buckets and few keys per bucket, no evictions occur until a
  // specific bucket overflows; filling m+1 keys of one bucket must evict
  // exactly one entry, and only from that bucket.
  const CacheGeometry geom = CacheGeometry::set_associative(64, 4);
  auto kernel = count_kernel();
  Cache cache(geom, kernel, /*hash_seed=*/42);

  // Find 5 keys landing in the same bucket.
  std::vector<std::uint32_t> same_bucket;
  std::uint64_t target_bucket = 0;
  for (std::uint32_t f = 0; same_bucket.size() < 5 && f < 100000; ++f) {
    const std::uint64_t b = reduce_range(key_of(f).hash(42), geom.num_buckets);
    if (same_bucket.empty()) {
      target_bucket = b;
      same_bucket.push_back(f);
    } else if (b == target_bucket) {
      same_bucket.push_back(f);
    }
  }
  ASSERT_EQ(same_bucket.size(), 5u);

  std::uint64_t evictions = 0;
  cache.set_eviction_sink([&](EvictedValue&&) { ++evictions; });
  for (const auto f : same_bucket) cache.process(key_of(f), rec_of(f));
  EXPECT_EQ(evictions, 1u) << "bucket overflow must evict exactly its LRU";
  EXPECT_FALSE(cache.peek(key_of(same_bucket[0])).has_value())
      << "oldest key in the bucket is the victim";
}

TEST(Cache, RejectsNullKernel) {
  EXPECT_THROW(Cache(CacheGeometry::fully_associative(2), nullptr), ConfigError);
}

TEST(Cache, EvictionFractionMatchesCounts) {
  Cache cache(CacheGeometry{1, 1}, count_kernel());
  cache.set_eviction_sink([](EvictedValue&&) {});
  for (std::uint32_t i = 0; i < 10; ++i) cache.process(key_of(i), rec_of(i));
  // 10 packets, 9 evictions (first init does not evict).
  EXPECT_DOUBLE_EQ(cache.stats().eviction_fraction(), 0.9);
}

// ------------------------------------------- tag-probed index validation --

/// Reference model of the pre-refactor cache semantics: a std::unordered_map
/// shadow tracking (key -> expected count state) plus hit/miss/eviction
/// tallies. The tag-probed cache must match it event for event.
TEST(Cache, TagProbeMatchesShadowMapOverZipfTrace) {
  constexpr std::uint64_t kRecords = 1'000'000;
  constexpr std::uint32_t kFlows = 40'000;
  const auto records = trace::zipf_records(kRecords, kFlows, 1.1, 2024);

  const CacheGeometry geom = CacheGeometry::set_associative(1 << 12, 8);
  Cache cache(geom, count_kernel());

  // Shadow state: resident value per key, plus merged evicted totals.
  std::unordered_map<Key, double> resident;
  std::unordered_map<Key, double> evicted_totals;
  std::uint64_t evictions = 0;
  std::uint64_t flushes = 0;
  cache.set_eviction_sink([&](EvictedValue&& ev) {
    const auto it = resident.find(ev.key);
    ASSERT_NE(it, resident.end()) << "eviction of a key the shadow lost";
    ASSERT_DOUBLE_EQ(ev.state[0], it->second)
        << "evicted count diverges from shadow";
    evicted_totals[ev.key] += ev.state[0];
    resident.erase(it);
    if (ev.final_flush) {
      ++flushes;
    } else {
      ++evictions;
    }
  });

  std::uint64_t hits = 0;
  std::uint64_t inits = 0;
  for (const auto& rec : records) {
    const auto bytes = rec.pkt.flow.to_bytes();
    const Key key{std::span<const std::byte>{bytes.data(), bytes.size()}};
    const bool was_resident = resident.count(key) > 0;
    cache.process(key, rec);
    if (was_resident) {
      ++hits;
    } else {
      ++inits;
    }
    resident[key] += 1.0;
    // Spot-check resident state through the tag probe (every 1009th record
    // to keep the O(n) peek affordable over a 1M trace).
    if ((hits + inits) % 1009 == 0) {
      const auto v = cache.peek(key);
      ASSERT_TRUE(v.has_value());
      ASSERT_DOUBLE_EQ((*v)[0], resident[key]);
    }
  }

  EXPECT_EQ(cache.stats().hits, hits);
  EXPECT_EQ(cache.stats().initializations, inits);
  EXPECT_EQ(cache.stats().evictions, evictions);
  EXPECT_EQ(cache.occupancy(), resident.size());

  // Final flush: every resident entry must emerge exactly once with the
  // shadow's value (asserted in the sink), and totals must cover the trace.
  cache.flush(Nanos{1});
  EXPECT_EQ(cache.stats().flushes, flushes);
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_TRUE(resident.empty());
  double total = 0.0;
  for (const auto& [key, count] : evicted_totals) total += count;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kRecords));
}

TEST(Cache, StdHashDecorrelatedFromBucketHash) {
  // std::hash<Key> (backing store) must not mirror the cache's bucket
  // placement: keys colliding in one structure shouldn't automatically
  // collide in the other (satellite of the tag-probe refactor; the old
  // default seeds were effectively correlated).
  constexpr std::uint64_t kBuckets = 1 << 10;
  std::uint64_t same = 0;
  std::uint64_t checked = 0;
  for (std::uint32_t f = 0; f < 20000; f += 2) {
    const Key a = key_of(f);
    const Key b = key_of(f + 1);
    const bool cache_collide =
        reduce_range(a.hash(0x5eedcafe), kBuckets) ==
        reduce_range(b.hash(0x5eedcafe), kBuckets);
    if (!cache_collide) continue;
    ++checked;
    same += reduce_range(std::hash<Key>{}(a), kBuckets) ==
            reduce_range(std::hash<Key>{}(b), kBuckets);
  }
  // Under independence, P(map collision | cache collision) = 1/kBuckets;
  // allow generous slack but rule out correlation.
  EXPECT_GT(checked, 0u);
  EXPECT_LT(same, checked / 4 + 2);
  // And equal keys still agree, with the cached hash intact.
  const Key k = key_of(7);
  EXPECT_EQ(std::hash<Key>{}(k), std::hash<Key>{}(key_of(7)));
  EXPECT_EQ(k.hash(), k.raw_hash());
  EXPECT_NE(std::hash<Key>{}(k), static_cast<std::size_t>(k.raw_hash()));
}

TEST(Cache, SteadyStateProcessAllocatesNothingForConstAKernels) {
  // Acceptance criterion: with a const-A/h=0 kernel (COUNT), the per-packet
  // path — tag probe, fold, LRU touch, even capacity evictions — must not
  // touch the heap once the cache is warm.
  const auto records = trace::zipf_records(200'000, 4000, 1.1, 7);
  Cache cache(CacheGeometry::set_associative(1 << 10, 8), count_kernel());
  cache.set_eviction_sink({});

  std::vector<Key> keys;
  keys.reserve(records.size());
  for (const auto& rec : records) {
    const auto bytes = rec.pkt.flow.to_bytes();
    keys.emplace_back(std::span<const std::byte>{bytes.data(), bytes.size()});
  }

  // Warm up: fill buckets so the steady state includes eviction traffic.
  for (std::size_t i = 0; i < 100'000; ++i) cache.process(keys[i], records[i]);

  const std::uint64_t before = g_allocations.load();
  for (std::size_t i = 100'000; i < records.size(); ++i) {
    cache.process(keys[i], records[i]);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state Cache::process allocated on the heap";
  EXPECT_GT(cache.stats().evictions, 0u)
      << "workload too small to exercise the eviction path";
}

}  // namespace
}  // namespace perfq::kv
