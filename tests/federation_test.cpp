// Network-wide queries, proven against an all-packets oracle (the PR's
// headline property): a FabricEngine running one engine per switch of a
// leaf-spine fabric must produce results BIT-IDENTICAL to a single oracle
// engine fed every switch's records in global emission order —
//
//   - for additive kernels (COUNT/SUM and their collection-layer JOINs):
//     over {2x2, 4x4} topologies x {serial, sharded} per-switch engines x
//     {refresh off, refresh on}, with evicting caches;
//   - for order-sensitive kernels (EWMA) and non-linear kernels (nonmt)
//     keyed by qid (every key owned by exactly one switch): refresh off;
//   - for network-wide MID-RUN snapshots against a fresh oracle fed the
//     same global record prefix;
//   - for fabric-wide dynamic attach/detach through FabricService,
//     including §3.3 admission control.
//
// The oracle sees exactly the records the taps see: the Network's global
// telemetry sink fires for every port, so the capture is filtered to
// records whose queue is owned by an instrumented switch (host egress
// ports emit telemetry too but are never tapped).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "federation/fabric_engine.hpp"
#include "runtime/engine_builder.hpp"
#include "runtime_test_util.hpp"
#include "service/fabric_service.hpp"

namespace perfq::federation {
namespace {

using compiler::compile_source;

compiler::CompiledProgram compile_ewma() {
  return compile_source(R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT qid, ewma GROUPBY qid WHERE tout != infinity
)",
                        {{"alpha", 0.25}});
}

/// The shared fabric config scaled up so the oracle comparison covers a
/// meaningful record volume (tens of thousands of per-switch records, with
/// constant eviction under the small test geometries).
trace::FabricTraceConfig big_fabric_config(std::uint64_t seed,
                                           std::uint32_t leaves = 2,
                                           std::uint32_t spines = 2) {
  trace::FabricTraceConfig c = runtime::fabric_test_config(seed, leaves, spines);
  c.num_flows = 1200;
  c.duration = Nanos{3'000'000};
  return c;
}

constexpr const char* kAdditiveSrc = R"(
R1 = SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON 5tuple
)";

constexpr const char* kNonmtSrc = R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT qid, nonmt GROUPBY qid WHERE proto == TCP
)";

/// One fabric run: topology + traffic from the shared generator, a global
/// oracle capture, and a FabricEngine over every switch.
struct FabricRun {
  explicit FabricRun(const trace::FabricTraceConfig& config,
                     compiler::CompiledProgram program,
                     FabricOptions options = {}) {
    net.set_telemetry_sink([this](const PacketRecord& rec) {
      captured.push_back(rec);
    });
    (void)runtime::build_test_fabric(net, config);
    fabric = std::make_unique<FabricEngine>(net, std::move(program),
                                            std::move(options));
  }

  /// The oracle's view of the capture: records of switch-owned queues only
  /// (optionally a prefix/range), in global emission order.
  [[nodiscard]] std::vector<PacketRecord> oracle_records(
      std::size_t begin = 0, std::size_t end = SIZE_MAX) const {
    std::vector<PacketRecord> out;
    for (std::size_t i = begin; i < captured.size() && i < end; ++i) {
      if (!net.node_is_host(net.queue_owner(captured[i].qid))) {
        out.push_back(captured[i]);
      }
    }
    return out;
  }

  net::Network net;
  std::vector<PacketRecord> captured;
  std::unique_ptr<FabricEngine> fabric;
};

/// A finished oracle engine over `records` (always serial, refresh off:
/// additive results are flush-schedule independent, and the single-source
/// suites pin refresh-off semantics — see collector.hpp's FP caveat).
std::unique_ptr<runtime::Engine> run_oracle(
    compiler::CompiledProgram program, const std::vector<PacketRecord>& records,
    Nanos now, kv::CacheGeometry geometry = kv::CacheGeometry::set_associative(
                   1u << 10, 4)) {
  runtime::EngineBuilder builder{std::move(program)};
  builder.geometry(geometry);
  auto oracle = builder.build();
  oracle->process_batch(records);
  oracle->finish(now);
  return oracle;
}

struct FabricCase {
  std::string name;
  std::uint32_t leaves = 2;
  std::uint32_t spines = 2;
  std::size_t shards = 0;
  Nanos refresh{0};
};

class FederatedOracle : public ::testing::TestWithParam<FabricCase> {};

/// Headline: additive GROUPBYs (and the JOIN built on them) federate
/// bit-for-bit against the all-packets oracle, with per-switch caches small
/// enough that eviction/merge runs constantly.
TEST_P(FederatedOracle, AdditiveProgramBitIdentical) {
  const auto& p = GetParam();
  FabricOptions options;
  options.shards = p.shards;
  options.refresh_interval = p.refresh;
  options.geometry = kv::CacheGeometry::set_associative(256, 4);
  FabricRun run(big_fabric_config(77, p.leaves, p.spines),
                compile_source(kAdditiveSrc), options);

  run.net.run_all();
  const Nanos end = run.net.now();
  run.fabric->finish(end);

  const auto oracle_in = run.oracle_records();
  ASSERT_GT(oracle_in.size(), 10'000u) << "workload too small to mean much";
  EXPECT_EQ(run.fabric->records(), oracle_in.size());
  const auto oracle = run_oracle(compile_source(kAdditiveSrc), oracle_in, end);

  runtime::expect_tables_bit_identical(oracle->table("R1"),
                                       run.fabric->table("R1"), "R1");
  runtime::expect_tables_bit_identical(oracle->table("R2"),
                                       run.fabric->table("R2"), "R2");
  runtime::expect_tables_bit_identical(oracle->result(), run.fabric->result(),
                                       "R3 (collection layer)");

  // 5tuple keys straddle switches, yet additive federation stays fully valid.
  const FederatedResult& fed = run.fabric->federated("R1");
  EXPECT_EQ(fed.capability, kv::MergeCapability::kAdditive);
  EXPECT_EQ(fed.accuracy.valid_keys, fed.accuracy.total_keys);
  EXPECT_EQ(fed.records, oracle_in.size());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FederatedOracle,
    ::testing::Values(FabricCase{"serial_2x2"},
                      FabricCase{"serial_2x2_refresh", 2, 2, 0, Nanos{150'000}},
                      FabricCase{"sharded_2x2", 2, 2, 2},
                      FabricCase{"serial_4x4", 4, 4},
                      FabricCase{"sharded_4x4_refresh", 4, 4, 2,
                                 Nanos{150'000}}),
    [](const auto& info) { return info.param.name; });

/// Order-sensitive fold (EWMA), keyed by qid: every key's whole stream
/// lives on the switch owning that queue, so federation is the exact
/// pass-through case — bit-identical to the oracle with refresh off and a
/// no-evict geometry (eviction schedules differ between one global engine
/// and per-switch engines; see the merge-test suite for the evicting case).
TEST(FederatedSingleSource, EwmaByQidBitIdentical) {
  for (const std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
    FabricOptions options;
    options.shards = shards;
    options.geometry = kv::CacheGeometry::set_associative(1u << 12, 8);
    FabricRun run(runtime::fabric_test_config(99), compile_ewma(),
                  options);
    run.net.run_all();
    const Nanos end = run.net.now();
    run.fabric->finish(end);

    const auto oracle_in = run.oracle_records();
    const auto oracle =
        run_oracle(compile_ewma(), oracle_in, end,
                   kv::CacheGeometry::set_associative(1u << 12, 8));
    runtime::expect_tables_bit_identical(
        oracle->result(), run.fabric->result(),
        "ewma by qid, shards=" + std::to_string(shards));

    const FederatedResult& fed = run.fabric->federated("result");
    EXPECT_EQ(fed.capability, kv::MergeCapability::kSingleSource);
    EXPECT_EQ(fed.accuracy.valid_keys, fed.accuracy.total_keys)
        << "qid keys must never straddle switches";
    EXPECT_GT(fed.accuracy.total_keys, 4u);
  }
}

/// Non-linear fold by qid: same single-source argument, plus the validity
/// accounting the paper's Fig. 6 semantics require.
TEST(FederatedSingleSource, NonLinearByQidBitIdentical) {
  FabricOptions options;
  options.geometry = kv::CacheGeometry::set_associative(1u << 12, 8);
  FabricRun run(runtime::fabric_test_config(101), compile_source(kNonmtSrc),
                options);
  run.net.run_all();
  const Nanos end = run.net.now();
  run.fabric->finish(end);

  const auto oracle =
      run_oracle(compile_source(kNonmtSrc), run.oracle_records(), end,
                 kv::CacheGeometry::set_associative(1u << 12, 8));
  runtime::expect_tables_bit_identical(oracle->result(), run.fabric->result(),
                                       "nonmt by qid");
  const FederatedResult& fed = run.fabric->federated("result");
  EXPECT_EQ(fed.accuracy.valid_keys, fed.accuracy.total_keys);
}

/// Network-wide mid-run snapshots: at several pause points, the federated
/// snapshot must equal a FRESH oracle engine fed exactly the global record
/// prefix emitted so far — and taking snapshots must not perturb the final
/// result (same no-perturbation contract as Engine::snapshot).
TEST(FederatedSnapshot, MidRunEqualsOracleOverSamePrefix) {
  FabricOptions options;
  options.geometry = kv::CacheGeometry::set_associative(256, 4);
  FabricRun run(runtime::fabric_test_config(77), compile_source(kAdditiveSrc),
                options);

  for (const std::int64_t pause : {500'000, 1'000'000, 1'500'000}) {
    run.net.run_until(Nanos{pause});
    const Nanos now = run.net.now();
    const FederatedResult fed = run.fabric->snapshot("R1", now);
    const auto prefix = run.oracle_records();
    EXPECT_EQ(fed.records, prefix.size());
    const auto oracle = run_oracle(compile_source(kAdditiveSrc), prefix, now);
    runtime::expect_tables_bit_identical(
        oracle->table("R1"), fed.table,
        "snapshot at t=" + std::to_string(pause));
  }

  run.net.run_all();
  const Nanos end = run.net.now();
  run.fabric->finish(end);
  const auto oracle =
      run_oracle(compile_source(kAdditiveSrc), run.oracle_records(), end);
  runtime::expect_tables_bit_identical(oracle->result(), run.fabric->result(),
                                       "final result after snapshots");
}

/// Fabric-wide dynamic attach/detach through the multi-tenant front end:
/// a tenant attached mid-run federates exactly the records emitted after
/// its (fabric-wide, tap-flushed) attach epoch; detach returns the exact
/// window result; admission control rejects over-budget tenants before any
/// switch engine is touched.
TEST(FabricServiceTest, AttachSnapshotDetachExactWindows) {
  FabricOptions options;
  options.geometry = kv::CacheGeometry::set_associative(256, 4);
  FabricRun run(runtime::fabric_test_config(77), compile_source(kAdditiveSrc),
                options);

  service::FabricServiceConfig cfg;
  cfg.tenant_geometry = kv::CacheGeometry::set_associative(1u << 10, 4);
  service::FabricService svc(*run.fabric, cfg);

  run.net.run_until(Nanos{800'000});
  const std::size_t attach_idx = run.captured.size();
  const auto info = svc.attach("tenant", "SELECT COUNT GROUPBY srcip");
  EXPECT_GT(info.die_fraction, 0.0);
  EXPECT_NEAR(svc.used_die_fraction(), info.die_fraction, 1e-12);
  ASSERT_EQ(svc.tenants().size(), 1u);

  // Mid-run tenant snapshot over the records since the attach epoch.
  run.net.run_until(Nanos{1'200'000});
  const FederatedResult snap = svc.snapshot("tenant");
  {
    const auto window = run.oracle_records(attach_idx);
    const auto oracle = run_oracle(
        compile_source("SELECT COUNT GROUPBY srcip"), window, snap.time);
    runtime::expect_tables_bit_identical(oracle->result(), snap.table,
                                         "tenant mid-run snapshot");
  }

  // Detach mid-run: the federated final table covers exactly the attach →
  // detach window, and the budget is released.
  run.net.run_until(Nanos{1'600'000});
  const std::size_t detach_idx_probe = run.captured.size();
  const FederatedResult final_result = svc.detach("tenant");
  // detach flushes taps first, so no record after the probe point can have
  // been folded (the event loop is paused between run_until steps).
  const auto window = run.oracle_records(attach_idx, detach_idx_probe);
  const auto oracle = run_oracle(compile_source("SELECT COUNT GROUPBY srcip"),
                                 window, final_result.time);
  runtime::expect_tables_bit_identical(oracle->result(), final_result.table,
                                       "tenant detach window");
  // FederatedResult::records counts the source ENGINES' records at export
  // (engine lifetime, not tenant window).
  EXPECT_EQ(final_result.records, run.oracle_records(0, detach_idx_probe).size());
  EXPECT_NEAR(svc.used_die_fraction(), 0.0, 1e-12);
  EXPECT_TRUE(svc.tenants().empty());

  // Admission control: a budget too small for any tenant rejects cleanly
  // and leaves the fabric untouched.
  service::FabricServiceConfig tiny;
  tiny.budget.max_die_fraction = 1e-9;
  service::FabricService strict(*run.fabric, tiny);
  EXPECT_THROW((void)strict.attach("hog", "SELECT COUNT GROUPBY srcip"),
               ConfigError);
  EXPECT_NEAR(strict.used_die_fraction(), 0.0, 1e-12);

  // Stream SELECT tenants are per-switch state: rejected at fabric level.
  EXPECT_THROW((void)svc.attach("stream", "SELECT srcip, qid FROM T"),
               ConfigError);

  // The base program still finishes exactly (attach/detach did not perturb).
  run.net.run_all();
  const Nanos end = run.net.now();
  run.fabric->finish(end);
  const auto base_oracle =
      run_oracle(compile_source(kAdditiveSrc), run.oracle_records(), end);
  runtime::expect_tables_bit_identical(base_oracle->result(),
                                       run.fabric->result(),
                                       "base program after tenant churn");
}

/// Per-switch metrics + fabric rollup through the shared obs:: exporters.
TEST(FabricMetricsTest, RollupSumsSwitchesAndExportersLabelThem) {
  FabricOptions options;
  options.geometry = kv::CacheGeometry::set_associative(256, 4);
  FabricRun run(runtime::fabric_test_config(77), compile_source(kAdditiveSrc),
                options);
  run.net.run_all();
  run.fabric->finish(run.net.now());

  const FabricMetrics m = run.fabric->metrics();
  ASSERT_EQ(m.switches.size(), run.fabric->switch_count());
  std::uint64_t sum = 0;
  for (const auto& [label, em] : m.switches) {
    EXPECT_FALSE(label.empty());
    sum += em.records;
  }
  EXPECT_EQ(m.rollup.records, sum);
  EXPECT_EQ(sum, run.fabric->records());
  EXPECT_EQ(m.rollup.engine, "fabric");

  const std::string json = fabric_metrics_to_json(m);
  EXPECT_NE(json.find("\"switch\""), std::string::npos);
  const std::string prom = fabric_metrics_to_prometheus(m);
  EXPECT_NE(prom.find("switch=\""), std::string::npos);
  EXPECT_NE(prom.find("records"), std::string::npos);
}

/// Construction-time contract checks.
TEST(FabricEngineTest, RejectsInvalidConfigurations) {
  net::Network net;
  const auto config = runtime::fabric_test_config(77);
  const auto fabric = runtime::build_test_fabric(net, config);

  // A program with no on-switch GROUPBY has nothing to federate.
  EXPECT_THROW(FabricEngine(net, compile_source("SELECT srcip, qid FROM T")),
               ConfigError);

  // Hosts have no switch pipeline to instrument.
  FabricOptions host_opts;
  host_opts.switches = {fabric.hosts.front()};
  EXPECT_THROW(
      FabricEngine(net, compile_source(kAdditiveSrc), host_opts),
      ConfigError);

  // Duplicate switch selection.
  FabricOptions dup_opts;
  dup_opts.switches = {fabric.leaves.front(), fabric.leaves.front()};
  EXPECT_THROW(FabricEngine(net, compile_source(kAdditiveSrc), dup_opts),
               ConfigError);

  // A valid explicit subset works, labeled by node name.
  FabricOptions sub_opts;
  sub_opts.switches = {fabric.leaves.front(), fabric.spines.front()};
  FabricEngine sub(net, compile_source(kAdditiveSrc), sub_opts);
  EXPECT_EQ(sub.switch_count(), 2u);
  EXPECT_EQ(sub.switch_label(0), net.node_name(fabric.leaves.front()));
}

}  // namespace
}  // namespace perfq::federation
