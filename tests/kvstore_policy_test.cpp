// Eviction-policy extension tests: victim selection semantics per policy,
// and the key invariant that merge exactness is policy-independent (the
// merge must be correct no matter *which* entry the cache chooses to evict).
#include <gtest/gtest.h>

#include <memory>

#include "kvstore/builtin_folds.hpp"
#include "kvstore/kvstore.hpp"
#include "trace/simple.hpp"

namespace perfq::kv {
namespace {

Key key_of(std::uint32_t flow) {
  const auto rec = trace::RecordBuilder{}.flow_index(flow).build();
  const auto bytes = rec.pkt.flow.to_bytes();
  return Key{std::span<const std::byte>{bytes.data(), bytes.size()}};
}

PacketRecord rec_of(std::uint32_t flow) {
  return trace::RecordBuilder{}.flow_index(flow).build();
}

TEST(EvictionPolicy, FifoIgnoresHits) {
  // Insert 1, 2; touch 1; insert 3. LRU evicts 2, FIFO evicts 1.
  for (const auto policy : {EvictionPolicy::kLru, EvictionPolicy::kFifo}) {
    Cache cache(CacheGeometry::fully_associative(2),
                std::make_shared<CountKernel>(), 1, policy);
    std::vector<Key> evicted;
    cache.set_eviction_sink([&](EvictedValue&& ev) { evicted.push_back(ev.key); });
    cache.process(key_of(1), rec_of(1));
    cache.process(key_of(2), rec_of(2));
    cache.process(key_of(1), rec_of(1));  // hit on 1
    cache.process(key_of(3), rec_of(3));  // forces an eviction
    ASSERT_EQ(evicted.size(), 1u) << to_cstring(policy);
    if (policy == EvictionPolicy::kLru) {
      EXPECT_EQ(evicted[0], key_of(2)) << "LRU must evict the untouched key";
    } else {
      EXPECT_EQ(evicted[0], key_of(1)) << "FIFO must evict the oldest insert";
    }
  }
}

TEST(EvictionPolicy, RandomIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Cache cache(CacheGeometry::fully_associative(4),
                std::make_shared<CountKernel>(), seed,
                EvictionPolicy::kRandom);
    std::vector<std::string> evicted;
    cache.set_eviction_sink(
        [&](EvictedValue&& ev) { evicted.push_back(ev.key.to_hex()); });
    for (std::uint32_t i = 0; i < 64; ++i) cache.process(key_of(i), rec_of(i));
    return evicted;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(EvictionPolicy, RandomEvictsWithinTheRightBucket) {
  // With per-bucket layout, a random victim must still come from the full
  // bucket of the arriving key (occupancy invariants hold).
  Cache cache(CacheGeometry::set_associative(32, 4),
              std::make_shared<CountKernel>(), 3, EvictionPolicy::kRandom);
  std::uint64_t evictions = 0;
  cache.set_eviction_sink([&](EvictedValue&&) { ++evictions; });
  for (std::uint32_t i = 0; i < 4096; ++i) cache.process(key_of(i), rec_of(i));
  EXPECT_EQ(cache.occupancy(), 32u);
  EXPECT_EQ(evictions + cache.occupancy(), 4096u);
}

class PolicyMergeTest : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(PolicyMergeTest, MergeExactUnderAnyPolicy) {
  const EvictionPolicy policy = GetParam();
  auto kernel = std::make_shared<CountSumKernel>();
  KeyValueStore split(CacheGeometry::set_associative(32, 4), kernel, 11, policy);
  ReferenceStore reference(kernel);

  Rng rng(policy == EvictionPolicy::kLru ? 1u : 2u);
  for (int i = 0; i < 20000; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.below(300));
    const auto rec = trace::RecordBuilder{}
                         .flow_index(f)
                         .len(64 + static_cast<std::uint32_t>(rng.below(1000)),
                              10)
                         .build();
    const auto bytes = rec.pkt.flow.to_bytes();
    const Key key{std::span<const std::byte>{bytes.data(), bytes.size()}};
    split.process(key, rec);
    reference.process(key, rec);
  }
  split.flush(Nanos{1});
  EXPECT_GT(split.cache().stats().evictions, 1000u);

  reference.for_each([&](const Key& key, const StateVector& want) {
    const StateVector* got = split.read(key);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ((*got)[0], want[0]);
    EXPECT_DOUBLE_EQ((*got)[1], want[1]);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyMergeTest,
                         ::testing::Values(EvictionPolicy::kLru,
                                           EvictionPolicy::kFifo,
                                           EvictionPolicy::kRandom),
                         [](const ::testing::TestParamInfo<EvictionPolicy>& p) {
                           return to_cstring(p.param);
                         });

}  // namespace
}  // namespace perfq::kv
