// Robustness: the front end must never crash on malformed input — every
// failure surfaces as QueryError with a location, never UB or an uncaught
// internal error. We fuzz with (a) random token soup assembled from the
// language's own vocabulary and (b) random mutations of valid programs.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "lang/sema.hpp"

namespace perfq::lang {
namespace {

const std::vector<std::string>& vocabulary() {
  static const std::vector<std::string> kVocab{
      "SELECT",  "FROM",    "WHERE",  "GROUPBY", "JOIN",   "ON",
      "def",     "if",      "else",   "and",     "or",     "not",
      "infinity", "5tuple", "srcip",  "dstip",   "tout",   "tin",
      "COUNT",   "SUM",     "R1",     "T",       "ewma",   "(",
      ")",       ",",       ":",      ".",       "=",      "==",
      "!=",      "<",       ">",      "+",       "-",      "*",
      "/",       "1",       "0.5",    "1ms",     "\n",     "    ",
  };
  return kVocab;
}

std::string random_soup(Rng& rng, std::size_t tokens) {
  const auto& vocab = vocabulary();
  std::string out;
  for (std::size_t i = 0; i < tokens; ++i) {
    out += vocab[rng.below(vocab.size())];
    out += " ";
  }
  return out;
}

class TokenSoupTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenSoupTest, NeverCrashesOnlyQueryErrors) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::string source = random_soup(rng, 1 + rng.below(40));
    try {
      const auto analyzed = analyze_source(source, {{"alpha", 0.5}});
      // Accidentally valid programs are fine; schemas must be materialized.
      EXPECT_FALSE(analyzed.queries.empty());
    } catch (const QueryError&) {
      // expected for almost every input
    }
    // Any other exception type escapes and fails the test.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenSoupTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(MutationFuzz, TruncationsOfValidProgramsFailCleanly) {
  const std::string valid = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

R1 = SELECT 5tuple, ewma GROUPBY 5tuple WHERE proto == TCP
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
)";
  for (std::size_t cut = 1; cut < valid.size(); cut += 3) {
    const std::string truncated = valid.substr(0, cut);
    try {
      (void)analyze_source(truncated, {{"alpha", 0.5}});
    } catch (const QueryError&) {
    }
  }
  SUCCEED() << "no crash across " << valid.size() / 3 << " truncations";
}

TEST(MutationFuzz, SingleCharacterCorruptionsFailCleanly) {
  const std::string valid =
      "R1 = SELECT COUNT, SUM(pkt_len) GROUPBY srcip WHERE proto == TCP";
  const std::string garbage = "@#($%^&;~`?";
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    mutated[rng.below(mutated.size())] = garbage[rng.below(garbage.size())];
    try {
      (void)analyze_source(mutated);
    } catch (const QueryError&) {
    }
  }
  SUCCEED();
}

TEST(MutationFuzz, DeepNestingDoesNotOverflow) {
  // Bounded recursion check: deeply parenthesized expressions either parse
  // or fail cleanly (the parser recurses; 2k levels stays within stack).
  std::string deep = "SELECT srcip FROM T WHERE ";
  for (int i = 0; i < 2000; ++i) deep += "(";
  deep += "tout";
  for (int i = 0; i < 2000; ++i) deep += ")";
  deep += " > 1";
  try {
    (void)analyze_source(deep);
  } catch (const QueryError&) {
  }
  SUCCEED();
}

TEST(MutationFuzz, LongIdentifiersAndNumbers) {
  const std::string long_ident(10'000, 'a');
  EXPECT_THROW((void)analyze_source("SELECT " + long_ident + " FROM T"),
               QueryError);
  EXPECT_THROW((void)analyze_source("SELECT srcip FROM T WHERE tout > 1" +
                                    std::string(500, '0') + "ms"),
               QueryError);  // number overflows to inf or suffix misparse
}

}  // namespace
}  // namespace perfq::lang
