// Full-stack integration: network simulator -> telemetry stream -> compiled
// queries -> results, validated against the simulator's own ground truth.
// This is the system the paper describes operating end-to-end.
#include <gtest/gtest.h>

#include <map>

#include "netsim/network.hpp"
#include "runtime/engine.hpp"

namespace perfq {
namespace {

using runtime::QueryEngine;

TEST(Integration, DropQueryMatchesQueueCountersExactly) {
  net::Network network(21);
  net::LinkConfig edge{10.0, 1000_ns, 16};
  const net::LeafSpine topo = net::build_leaf_spine(network, 2, 1, 4, edge, edge);

  QueryEngine engine(
      compiler::compile_source("SELECT COUNT GROUPBY qid WHERE tout == infinity"));
  network.set_telemetry_sink(
      [&engine](const PacketRecord& rec) { engine.process(rec); });

  // Overdrive two hosts on leaf 1 from everyone on leaf 0.
  int port = 0;
  for (std::uint32_t h = 0; h < 4; ++h) {
    for (std::uint32_t target : {0u, 1u}) {
      FiveTuple flow{net::leaf_spine_ip(0, h), net::leaf_spine_ip(1, target),
                     static_cast<std::uint16_t>(10000 + port++), 80,
                     static_cast<std::uint8_t>(IpProto::kUdp)};
      network.add_udp_flow(flow, 0_ns, 5000, 1200, 400000.0);
    }
  }
  network.run_until(50_ms);
  engine.finish(network.now());

  // The query's per-qid counts must equal the simulator's drop counters for
  // every queue (zero-drop queues are simply absent from the table).
  const runtime::ResultTable& result = engine.result();
  std::map<std::uint32_t, double> measured;
  for (const auto& row : result.rows()) {
    measured[static_cast<std::uint32_t>(row[result.column("qid")])] =
        row[result.column("COUNT")];
  }
  std::uint64_t total_sim_drops = 0;
  for (std::uint32_t q = 0; q < network.queue_count(); ++q) {
    const auto drops = network.queue_stats(q).dropped;
    total_sim_drops += drops;
    if (drops == 0) {
      EXPECT_EQ(measured.count(q), 0u) << network.queue_name(q);
    } else {
      ASSERT_EQ(measured.count(q), 1u) << network.queue_name(q);
      EXPECT_DOUBLE_EQ(measured[q], static_cast<double>(drops))
          << network.queue_name(q);
    }
  }
  EXPECT_GT(total_sim_drops, 0u) << "scenario must actually drop";
}

TEST(Integration, RetransmissionsShowUpInNonMonotonicQuery) {
  // A lossy path forces timeout retransmissions; the nonmt query must count
  // non-monotonic sequence numbers for exactly the flows that retransmitted.
  net::Network network(22);
  const auto a = network.add_host(ipv4_from_string("10.0.0.1"));
  const auto b = network.add_host(ipv4_from_string("10.0.0.2"));
  const auto sw = network.add_switch("s");
  net::LinkConfig tight{10.0, 1000_ns, 6};
  network.connect(a, sw, tight);
  network.connect(b, sw, tight);
  network.finalize_routes();

  QueryEngine engine(compiler::compile_source(R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP
)"));
  network.set_telemetry_sink(
      [&engine](const PacketRecord& rec) { engine.process(rec); });

  FiveTuple flow{ipv4_from_string("10.0.0.1"), ipv4_from_string("10.0.0.2"),
                 7777, 80, static_cast<std::uint8_t>(IpProto::kTcp)};
  network.add_window_flow(flow, 0_ns, 400, 1200, 24, 1_ms);
  network.run_until(1_s);
  engine.finish(network.now());

  const net::FlowStats& truth = network.flow_stats(flow);
  EXPECT_TRUE(truth.completed);
  EXPECT_GT(truth.retransmits, 0u) << "tight queue must force retransmissions";

  const runtime::ResultTable& result = engine.result();
  double nm_total = 0;
  for (const auto& row : result.rows()) {
    if (static_cast<std::uint32_t>(row[result.column("srcip")]) ==
        flow.src_ip) {
      nm_total += row[result.column("nm_count")];
    }
  }
  EXPECT_GT(nm_total, 0.0)
      << "retransmitted segments re-use old sequence numbers";
}

TEST(Integration, EcmpSpreadsFlowsAcrossSpines) {
  net::Network network(23);
  net::LinkConfig link{10.0, 1000_ns, 256};
  const net::LeafSpine topo = net::build_leaf_spine(network, 2, 4, 4, link, link);

  // Many distinct inter-leaf flows: with 4 spines and hash-based ECMP, each
  // spine should carry a nontrivial share.
  for (int i = 0; i < 64; ++i) {
    FiveTuple flow{net::leaf_spine_ip(0, static_cast<std::uint32_t>(i % 4)),
                   net::leaf_spine_ip(1, static_cast<std::uint32_t>((i / 4) % 4)),
                   static_cast<std::uint16_t>(20000 + i), 443,
                   static_cast<std::uint8_t>(IpProto::kUdp)};
    // 16 flows/host x 1e5 pps x 500 B = 0.64 Gb/s per 10G edge: no drops.
    network.add_udp_flow(flow, 0_ns, 50, 500, 1e5, false);
  }
  network.run_until(100_ms);

  std::uint64_t spines_used = 0;
  std::uint64_t total = 0;
  for (const auto spine : topo.spines) {
    const std::uint32_t q = network.queue_id(topo.leaves[0], spine);
    total += network.queue_stats(q).enqueued;
    if (network.queue_stats(q).enqueued > 0) ++spines_used;
  }
  EXPECT_EQ(total, 64u * 50u) << "all inter-leaf packets cross some spine";
  EXPECT_GE(spines_used, 3u) << "hash ECMP must use most spines";
}

TEST(Integration, EcmpKeepsEachFlowOnOnePath) {
  // No intra-flow multipath: a single flow's packets must all use the same
  // spine (5-tuple hashing), or TCP-style streams would reorder.
  net::Network network(24);
  net::LinkConfig link{10.0, 1000_ns, 256};
  const net::LeafSpine topo = net::build_leaf_spine(network, 2, 4, 2, link, link);

  std::map<std::uint32_t, std::set<std::uint32_t>> spine_queues_per_flow;
  network.set_telemetry_sink([&](const PacketRecord& rec) {
    for (const auto spine : topo.spines) {
      if (rec.qid == network.queue_id(topo.leaves[0], spine)) {
        spine_queues_per_flow[rec.pkt.flow.src_port].insert(rec.qid);
      }
    }
  });
  for (int i = 0; i < 16; ++i) {
    FiveTuple flow{net::leaf_spine_ip(0, 0), net::leaf_spine_ip(1, 0),
                   static_cast<std::uint16_t>(30000 + i), 443,
                   static_cast<std::uint8_t>(IpProto::kUdp)};
    network.add_udp_flow(flow, 0_ns, 40, 400, 1e6, false);
  }
  network.run_until(100_ms);
  ASSERT_FALSE(spine_queues_per_flow.empty());
  for (const auto& [port, queues] : spine_queues_per_flow) {
    EXPECT_EQ(queues.size(), 1u) << "flow srcport " << port << " split paths";
  }
}

TEST(Integration, PerQueueByteCountsMatchSimulator) {
  net::Network network(25);
  const auto a = network.add_host(ipv4_from_string("10.0.0.1"));
  const auto b = network.add_host(ipv4_from_string("10.0.0.2"));
  const auto sw = network.add_switch("s");
  net::LinkConfig roomy{10.0, 1000_ns, 1024};
  network.connect(a, sw, roomy);
  network.connect(b, sw, roomy);
  network.finalize_routes();

  QueryEngine engine(compiler::compile_source(
      "SELECT COUNT, SUM(pkt_len) GROUPBY qid"));
  std::map<std::uint32_t, std::pair<double, double>> truth;
  network.set_telemetry_sink([&](const PacketRecord& rec) {
    engine.process(rec);
    if (!rec.dropped()) {
      truth[rec.qid].first += 1.0;
      truth[rec.qid].second += rec.pkt.pkt_len;
    }
  });

  FiveTuple flow{ipv4_from_string("10.0.0.1"), ipv4_from_string("10.0.0.2"),
                 1234, 80, static_cast<std::uint8_t>(IpProto::kUdp)};
  network.add_udp_flow(flow, 0_ns, 2000, 900, 1e5);
  network.run_until(100_ms);
  engine.finish(network.now());

  const runtime::ResultTable& result = engine.result();
  EXPECT_EQ(result.row_count(), truth.size());
  for (const auto& row : result.rows()) {
    const auto qid = static_cast<std::uint32_t>(row[result.column("qid")]);
    EXPECT_DOUBLE_EQ(row[result.column("COUNT")], truth[qid].first);
    EXPECT_DOUBLE_EQ(row[result.column("SUM(pkt_len)")], truth[qid].second);
  }
}

}  // namespace
}  // namespace perfq
