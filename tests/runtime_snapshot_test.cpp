// Mid-run snapshot() — the paper's §3.2 application pull — property-tested
// for exactness at record boundaries.
//
// The contract (engine_api.hpp): a snapshot taken after feeding a record
// prefix equals, bit for bit, the table a fresh engine fed the same prefix
// would produce from finish() at the same timestamp — live cache contents
// merged over the backing store with the exact-merge machinery. The sharded
// engine must agree with the serial engine at every boundary (its in-band
// snapshot marker + eviction drain barrier reconstruct the same state from
// D×N rings, per-shard cache slices and the concurrent backing store), and
// taking snapshots must not perturb any engine's final results.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/engine_builder.hpp"
#include "runtime_test_util.hpp"
#include "trace/flow_session.hpp"

namespace perfq::runtime {
namespace {

std::vector<PacketRecord> workload() { return test_workload(); }

/// Fig. 2 fold corpus: const-A, varying-A, h=1 linear, and non-linear.
struct CorpusEntry {
  const char* name;
  const char* source;
  bool linear;
};
const CorpusEntry kCorpus[] = {
    {"counter", R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

R1 = SELECT 5tuple, counter GROUPBY 5tuple
)",
     true},
    {"ewma", R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

R1 = SELECT 5tuple, ewma GROUPBY 5tuple
)",
     true},
    {"outofseq", R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

R1 = SELECT 5tuple, outofseq GROUPBY 5tuple
)",
     true},
    {"gear", R"(
def gear (acc, (pkt_len)):
    if pkt_len > 500:
        acc = 2 * acc
    else:
        acc = acc + 1

R1 = SELECT 5tuple, gear GROUPBY 5tuple
)",
     true},
    {"nonmt", R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

R1 = SELECT 5tuple, nonmt GROUPBY 5tuple
)",
     false},
};
const std::map<std::string, double> kParams{{"alpha", 0.125}};

/// Small cache (64 x 8) so evictions/merges hit on every prefix; divides
/// into 1 and 4 shards.
kv::CacheGeometry small_geometry() {
  return kv::CacheGeometry::set_associative(64, 8);
}

EngineBuilder builder_for(const CorpusEntry& entry, Nanos refresh) {
  EngineBuilder builder(compiler::compile_source(entry.source, kParams));
  builder.geometry(small_geometry()).refresh(refresh);
  return builder;
}

/// The property: at K record boundaries, every engine's snapshot equals the
/// fresh-engine-finish oracle over the same prefix, bit for bit.
void run_snapshot_property(const CorpusEntry& entry, Nanos refresh) {
  const auto records = workload();
  const std::span<const PacketRecord> span(records);
  // K = 4 uneven boundaries (plus the trivial 0 boundary) to stress partial
  // epochs, plus the full-trace boundary.
  const std::size_t boundaries[] = {0, 997, span.size() / 3,
                                    span.size() / 2 + 13, span.size()};

  struct UnderTest {
    std::string label;
    std::unique_ptr<Engine> engine;
  };
  std::vector<UnderTest> engines;
  engines.push_back({"serial", builder_for(entry, refresh).build()});
  for (const std::size_t dispatchers : {1u, 2u}) {
    for (const std::size_t shards : {1u, 4u}) {
      EngineBuilder b = builder_for(entry, refresh);
      b.sharded(shards).dispatchers(dispatchers);
      engines.push_back({"D" + std::to_string(dispatchers) + "xS" +
                             std::to_string(shards),
                         b.build()});
    }
  }

  std::size_t fed = 0;
  for (const std::size_t boundary : boundaries) {
    ASSERT_GE(boundary, fed);
    const auto chunk = span.subspan(fed, boundary - fed);
    const Nanos stamp = 20_s + Nanos{static_cast<std::int64_t>(boundary)};
    for (auto& ut : engines) ut.engine->process_batch(chunk);
    fed = boundary;

    // Oracle: a fresh engine over exactly this prefix, finished at the
    // snapshot timestamp.
    auto oracle = builder_for(entry, refresh).build();
    oracle->process_batch(span.first(boundary));
    oracle->finish(stamp);
    const ResultTable& want = oracle->table("R1");

    for (auto& ut : engines) {
      const std::string context = std::string(entry.name) + "/" + ut.label +
                                  " refresh=" +
                                  std::to_string(refresh.count()) +
                                  " boundary=" + std::to_string(boundary);
      const EngineSnapshot snap = ut.engine->snapshot("R1", stamp);
      EXPECT_EQ(snap.records, boundary) << context;
      EXPECT_EQ(snap.time, stamp) << context;
      expect_tables_bit_identical(want, snap.table, context);
    }
  }

  // Snapshots must not have perturbed anything: all engines still finish to
  // the untouched reference's exact result.
  auto reference = builder_for(entry, refresh).build();
  reference->process_batch(span);
  reference->finish(12_s);
  for (auto& ut : engines) {
    ut.engine->finish(12_s);
    expect_tables_bit_identical(reference->table("R1"),
                                ut.engine->table("R1"),
                                std::string(entry.name) + "/" + ut.label +
                                    " post-snapshot finish");
    EXPECT_EQ(ut.engine->refresh_count(), reference->refresh_count());
  }
}

TEST(Snapshot, MatchesFreshEngineFinishAtEveryBoundary) {
  for (const CorpusEntry& entry : kCorpus) {
    run_snapshot_property(entry, /*refresh=*/0_s);
  }
}

TEST(Snapshot, MatchesWithPeriodicRefreshRunning) {
  for (const CorpusEntry& entry : kCorpus) {
    run_snapshot_property(entry, /*refresh=*/1_s);
  }
}

TEST(Snapshot, RepeatedSnapshotsAtTheSameBoundaryAgree) {
  // Two back-to-back pulls with no records in between must return the same
  // table (and exercise the sharded same-seq marker path).
  const auto records = workload();
  for (const bool sharded : {false, true}) {
    EngineBuilder builder = builder_for(kCorpus[0], 0_s);
    if (sharded) builder.sharded(4).dispatchers(2);
    auto engine = builder.build();
    engine->process_batch(records);
    const EngineSnapshot a = engine->snapshot("R1", 11_s);
    const EngineSnapshot b = engine->snapshot("R1", 11_s);
    expect_tables_bit_identical(a.table, b.table,
                                sharded ? "sharded" : "serial");
    engine->finish(12_s);
  }
}

TEST(Snapshot, ErrorsAreCleanOnBothEngines) {
  const char* source = R"(
S = SELECT srcip, pkt_len FROM T WHERE pkt_len > 300
R1 = SELECT COUNT GROUPBY srcip
)";
  for (const bool sharded : {false, true}) {
    EngineBuilder builder{compiler::compile_source(source)};
    builder.geometry(small_geometry());
    if (sharded) builder.sharded(2);
    auto engine = builder.build();
    // Unknown query.
    EXPECT_THROW((void)engine->snapshot("R9", 1_s), QueryError);
    // Stream SELECTs have no store to snapshot (their rows go to sinks).
    EXPECT_THROW((void)engine->snapshot("S", 1_s), QueryError);
    // After finish, snapshot is no longer available.
    engine->finish(1_s);
    EXPECT_THROW((void)engine->snapshot("R1", 2_s), Error);
  }
}

}  // namespace
}  // namespace perfq::runtime
