// Wire-rate ingest: the lazy wire-view path (Engine::process_wire_batch,
// folding straight off frame bytes) must be BIT-IDENTICAL to the eager
// reference (wire::try_parse then process_batch) — same tables, same
// counters, exact double equality — on both engines, with damage sprinkled
// in and refresh on or off. Plus the sema FieldUsage contract the lazy
// decode relies on, and the burst truncation property: a frame cut at any
// byte offset is skipped-and-counted (or parses identically, if the cut
// spared the headers) without perturbing its burst neighbors.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include <filesystem>

#include "runtime/engine.hpp"
#include "runtime/sharded/sharded_engine.hpp"
#include "runtime_test_util.hpp"
#include "trace/wire_replay.hpp"
#include "trace/wire_trace.hpp"

namespace perfq::runtime {
namespace {

const std::map<std::string, double> kParams = {{"alpha", 0.125}, {"K", 50}};

/// The Fig. 2 fold corpus (the sharded-equivalence suite's list), spanning
/// const-A, varying-A, h=1 linear and non-linear kernels — each stresses a
/// different lazy-update specialization (builtins, compiled fold bodies,
/// the history-window materializing fallback).
struct CorpusEntry {
  const char* name;
  const char* source;
};
const CorpusEntry kFig2Corpus[] = {
    {"counter", R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

SELECT 5tuple, counter GROUPBY 5tuple
)"},
    {"bytecounter", R"(
def bytecounter ((cnt, bytes), (pkt_len)):
    cnt = cnt + 1
    bytes = bytes + pkt_len

SELECT 5tuple, bytecounter GROUPBY 5tuple
)"},
    {"ewma", R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)"},
    {"outofseq", R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple
)"},
    {"nonmt", R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple
)"},
    {"perc", R"(
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

SELECT qid, perc GROUPBY qid
)"},
    {"sum_lat", R"(
def sum_lat (lat, (tin, tout)):
    lat = lat + (tout - tin)

SELECT 5tuple, sum_lat GROUPBY 5tuple
)"},
    {"gear", R"(
def gear (acc, (pkt_len)):
    if pkt_len > 500:
        acc = 2 * acc
    else:
        acc = acc + 1

SELECT 5tuple, gear GROUPBY 5tuple
)"},
};

/// Records serialized to wire frames with their telemetry sidecars.
/// `storage` owns the bytes (inner vectors never move their heap buffers,
/// so the spans in `frames` stay valid as more are appended).
struct FrameSet {
  std::vector<std::vector<std::byte>> storage;
  std::vector<FrameObservation> frames;

  void add(const PacketRecord& rec) {
    storage.push_back(wire::serialize(rec.pkt));
    add_bytes(storage.back(), rec);
  }
  void add_bytes(std::span<const std::byte> bytes, const PacketRecord& rec) {
    FrameObservation frame;
    frame.bytes = bytes;
    frame.qid = rec.qid;
    frame.tin = rec.tin;
    frame.tout = rec.tout;
    frame.qsize = rec.qsize;
    frames.push_back(frame);
  }
};

FrameSet serialize_workload(const std::vector<PacketRecord>& records) {
  FrameSet set;
  for (const PacketRecord& rec : records) set.add(rec);
  return set;
}

EngineConfig engine_config(Nanos refresh) {
  EngineConfig config;
  config.geometry = kv::CacheGeometry::set_associative(64, 8);
  config.refresh_interval = refresh;
  return config;
}

/// Eager reference: try_parse every frame, feed the survivors through
/// process_batch. Everything downstream of the parse is the pre-wire-view
/// code path, so this is the semantic anchor the lazy path must match.
ResultTable eager_reference(const char* source,
                            std::span<const FrameObservation> frames,
                            Nanos refresh, trace::IngestStats* stats_out) {
  QueryEngine engine(compiler::compile_source(source, kParams),
                     engine_config(refresh));
  const trace::IngestStats stats =
      trace::replay_frames(engine, frames, /*batch=*/777);
  engine.finish(12_s);
  if (stats_out != nullptr) *stats_out = stats;
  return engine.result();
}

void run_wire_equivalence(const CorpusEntry& entry,
                          std::span<const FrameObservation> frames,
                          Nanos refresh) {
  const std::string context =
      std::string(entry.name) + " refresh=" + std::to_string(refresh.count());
  trace::IngestStats want_stats;
  const ResultTable want =
      eager_reference(entry.source, frames, refresh, &want_stats);

  // Serial lazy path, deliberately odd burst size (chunking must not show).
  QueryEngine lazy(compiler::compile_source(entry.source, kParams),
                   engine_config(refresh));
  trace::IngestStats lazy_stats;
  for (std::size_t base = 0; base < frames.size(); base += 501) {
    const std::size_t n = std::min<std::size_t>(501, frames.size() - base);
    lazy_stats += lazy.process_wire_batch(frames.subspan(base, n));
  }
  lazy.finish(12_s);
  EXPECT_EQ(lazy_stats.parsed, want_stats.parsed) << context;
  EXPECT_EQ(lazy_stats.dropped(), want_stats.dropped()) << context;
  EXPECT_EQ(lazy.records_processed(), want_stats.parsed) << context;
  expect_tables_bit_identical(want, lazy.result(), context + " [serial]");

  // Sharded engines across the dispatch matrix: the wire burst is decoded
  // once on the caller and fanned out by value through the rings.
  for (const std::size_t dispatchers : {1u, 2u}) {
    for (const std::size_t shards : {1u, 4u}) {
      ShardedEngineConfig config;
      config.engine = engine_config(refresh);
      config.num_shards = shards;
      config.num_dispatchers = dispatchers;
      config.ring_capacity = 512;
      config.dispatch_batch = 64;
      ShardedEngine sharded(compiler::compile_source(entry.source, kParams),
                            config);
      trace::IngestStats sharded_stats;
      for (std::size_t base = 0; base < frames.size(); base += 1024) {
        const std::size_t n =
            std::min<std::size_t>(1024, frames.size() - base);
        sharded_stats += sharded.process_wire_batch(frames.subspan(base, n));
      }
      sharded.finish(12_s);
      EXPECT_EQ(sharded_stats.parsed, want_stats.parsed) << context;
      expect_tables_bit_identical(
          want, sharded.result(),
          context + " [D=" + std::to_string(dispatchers) +
              " shards=" + std::to_string(shards) + "]");
    }
  }
}

TEST(WireIngest, Fig2CorpusBitIdenticalToEagerParse) {
  const auto set = serialize_workload(test_workload());
  for (const auto& entry : kFig2Corpus) {
    run_wire_equivalence(entry, set.frames, /*refresh=*/0_s);
  }
}

TEST(WireIngest, Fig2CorpusBitIdenticalWithPeriodicRefresh) {
  // Refresh boundaries are found from the record's tin, which a wire view
  // carries in its sidecar — epochs must land identically on both paths.
  const auto set = serialize_workload(test_workload());
  for (const auto& entry : kFig2Corpus) {
    run_wire_equivalence(entry, set.frames, /*refresh=*/1_s);
  }
}

TEST(WireIngest, DamagedFramesSkippedIdenticallyOnBothPaths) {
  // Damage sprinkled through the burst: both paths must skip the same
  // frames, count them under the same reasons, and agree on the tables.
  const auto records = test_workload();
  FrameSet set;
  for (std::size_t i = 0; i < records.size(); ++i) {
    set.storage.push_back(wire::serialize(records[i].pkt));
    auto& bytes = set.storage.back();
    if (i % 11 == 3) {
      bytes.resize(bytes.size() / 4);  // snap-length truncation
    } else if (i % 11 == 7) {
      bytes[12] = std::byte{0x86};  // IPv6 EtherType
      bytes[13] = std::byte{0xDD};
    }
    set.add_bytes(bytes, records[i]);
  }
  for (const auto& entry : {kFig2Corpus[1], kFig2Corpus[4]}) {
    run_wire_equivalence(entry, set.frames, /*refresh=*/1_s);
  }
}

TEST(WireIngest, ChecksumVerificationOptInCountsBadChecksum) {
  const auto records = test_workload(/*seed=*/5, /*num_flows=*/50);
  FrameSet set;
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    set.storage.push_back(wire::serialize(records[i].pkt));
    auto& bytes = set.storage.back();
    if (i % 7 == 2) {
      bytes[22] ^= std::byte{0xFF};  // flip the TTL: checksum now stale
      ++corrupted;
    }
    set.add_bytes(bytes, records[i]);
  }
  ASSERT_GT(corrupted, 0u);

  // Verification off (the default): a stale checksum is not consulted, the
  // frame parses (with the corrupt TTL visible as data).
  {
    QueryEngine engine(compiler::compile_source(kFig2Corpus[0].source, kParams),
                       engine_config(0_s));
    const auto stats = engine.process_wire_batch(set.frames);
    EXPECT_EQ(stats.parsed, set.frames.size());
    EXPECT_EQ(stats.bad_checksum, 0u);
  }
  // Opt in on both engines: corrupted headers are skipped and counted, and
  // the verdict reaches the metrics surface.
  EngineConfig verifying = engine_config(0_s);
  verifying.verify_checksums = true;
  {
    QueryEngine engine(compiler::compile_source(kFig2Corpus[0].source, kParams),
                       verifying);
    const auto stats = engine.process_wire_batch(set.frames);
    EXPECT_EQ(stats.parsed, set.frames.size() - corrupted);
    EXPECT_EQ(stats.bad_checksum, corrupted);
    EXPECT_EQ(stats.dropped(), corrupted);
    EXPECT_EQ(engine.metrics().ingest.bad_checksum, corrupted);
  }
  {
    ShardedEngineConfig config;
    config.engine = verifying;
    config.num_shards = 4;
    ShardedEngine engine(compiler::compile_source(kFig2Corpus[0].source, kParams),
                         config);
    const auto stats = engine.process_wire_batch(set.frames);
    engine.finish(12_s);
    EXPECT_EQ(stats.bad_checksum, corrupted);
    EXPECT_EQ(engine.metrics().ingest.bad_checksum, corrupted);
  }
}

TEST(WireIngest, BurstTruncationNeverPerturbsNeighbors) {
  // The burst property behind resilient capture ingest: cut ONE frame at
  // every possible byte offset inside a [good, cut, good] burst — the cut
  // frame either parses identically to the full frame (the cut spared the
  // headers; payload bytes are never read) or is skipped and counted, and
  // the neighbors fold identically either way.
  PacketRecord mid;
  mid.pkt.flow = FiveTuple{0xC0A80101, 0x0A000001, 50000, 80, 6};
  mid.pkt.payload_len = 64;
  mid.pkt.pkt_len = 64 + 54;
  mid.pkt.tcp_seq = 0x12345678;
  mid.tin = Nanos{10};
  mid.tout = Nanos{20};
  const auto mid_bytes = wire::serialize(mid.pkt);
  const std::size_t header_bytes = wire::parse(mid_bytes).header_bytes;

  PacketRecord left = mid, right = mid;
  left.pkt.flow.src_port = 1111;
  right.pkt.flow.src_port = 2222;
  const auto left_bytes = wire::serialize(left.pkt);
  const auto right_bytes = wire::serialize(right.pkt);

  QueryEngine engine(compiler::compile_source(kFig2Corpus[1].source, kParams),
                     engine_config(0_s));
  std::uint64_t want_parsed = 0;
  std::uint64_t want_truncated = 0;
  trace::IngestStats got;
  FrameSet all;  // the identical feed, replayed eagerly as the reference
  for (std::size_t len = 0; len <= mid_bytes.size(); ++len) {
    FrameSet burst;
    burst.add_bytes(left_bytes, left);
    burst.add_bytes(std::span<const std::byte>(mid_bytes.data(), len), mid);
    burst.add_bytes(right_bytes, right);
    got += engine.process_wire_batch(burst.frames);
    all.add_bytes(left_bytes, left);
    all.add_bytes(std::span<const std::byte>(mid_bytes.data(), len), mid);
    all.add_bytes(right_bytes, right);
    want_parsed += len < header_bytes ? 2 : 3;
    want_truncated += len < header_bytes ? 1 : 0;
  }
  engine.finish(1_s);
  EXPECT_EQ(got.parsed, want_parsed);
  EXPECT_EQ(got.truncated, want_truncated);
  EXPECT_EQ(got.dropped(), want_truncated);

  // Each burst folded its neighbors and exactly the header-complete cuts:
  // the eager reference over the identical feed lands on the same table.
  QueryEngine reference(
      compiler::compile_source(kFig2Corpus[1].source, kParams),
      engine_config(0_s));
  const trace::IngestStats ref_stats =
      trace::replay_frames(reference, all.frames, /*batch=*/64);
  reference.finish(1_s);
  EXPECT_EQ(ref_stats.parsed, want_parsed);
  EXPECT_EQ(ref_stats.truncated, want_truncated);
  ASSERT_EQ(engine.result().row_count(), 3u);
  expect_tables_bit_identical(reference.result(), engine.result(),
                              "burst truncation");
}

TEST(WireIngest, PqwfFileReplayMatchesInMemoryFrames) {
  // Capture bytes from disk: frames written to a PQWF file and replayed
  // through the mmap reader + process_wire_batch must land on the same
  // tables and accounting as the same frames fed from memory — the spans
  // the engine folds over alias the file mapping, zero copies in between.
  const auto records = test_workload(/*seed=*/31, /*num_flows=*/100);
  FrameSet set;
  for (std::size_t i = 0; i < records.size(); ++i) {
    set.storage.push_back(wire::serialize(records[i].pkt));
    auto& bytes = set.storage.back();
    if (i % 13 == 5) bytes.resize(10);  // damage rides along on disk too
    set.add_bytes(bytes, records[i]);
  }
  const auto path =
      std::filesystem::temp_directory_path() / "wire_ingest_roundtrip.pqwf";
  trace::write_wire_trace(path, set.frames);

  QueryEngine from_memory(
      compiler::compile_source(kFig2Corpus[1].source, kParams),
      engine_config(1_s));
  trace::IngestStats mem_stats;
  mem_stats += from_memory.process_wire_batch(set.frames);
  from_memory.finish(12_s);

  QueryEngine from_file(
      compiler::compile_source(kFig2Corpus[1].source, kParams),
      engine_config(1_s));
  const trace::IngestStats file_stats =
      trace::replay_wire_trace(from_file, path, /*burst=*/256);
  from_file.finish(12_s);

  EXPECT_EQ(file_stats.parsed, mem_stats.parsed);
  EXPECT_EQ(file_stats.truncated, mem_stats.truncated);
  expect_tables_bit_identical(from_memory.result(), from_file.result(),
                              "pqwf replay");
  std::filesystem::remove(path);
}

TEST(WireIngest, FieldUsageReflectsWhatTheProgramReads) {
  // Sema's per-program FieldUsage is the lazy path's decode contract: a
  // count-over-5tuple program touches exactly the key fields on the wire.
  const auto counter =
      compiler::compile_source(kFig2Corpus[0].source, kParams);
  const FieldUsage usage = counter.field_usage;
  for (const FieldId f : five_tuple_fields()) {
    EXPECT_TRUE(usage.test(f)) << field_name(f);
  }
  EXPECT_FALSE(usage.test(FieldId::kPktLen));  // declared but never read
  EXPECT_FALSE(usage.test(FieldId::kTcpSeq));
  EXPECT_FALSE(usage.test(FieldId::kIpTtl));
  EXPECT_EQ(usage.wire_fields(), 5);
  EXPECT_EQ(usage.wire_fields_skipped(), 7);

  // ewma keys on the 5-tuple but folds over sidecar timestamps only — the
  // wire decode cost is still just the 13 key bytes.
  const auto ewma = compiler::compile_source(kFig2Corpus[2].source, kParams);
  EXPECT_TRUE(ewma.field_usage.test(FieldId::kTin));
  EXPECT_TRUE(ewma.field_usage.test(FieldId::kTout));
  EXPECT_EQ(ewma.field_usage.wire_fields(), 5);

  // A predicate's reads count too.
  const auto filtered = compiler::compile_source(
      "SELECT 5tuple, COUNT GROUPBY 5tuple WHERE pkt_len > 100");
  EXPECT_TRUE(filtered.field_usage.test(FieldId::kPktLen));
  EXPECT_EQ(filtered.field_usage.wire_fields(), 6);

  // Per-plan usage unions into the program-wide set.
  FieldUsage unioned;
  for (const auto& plan : filtered.switch_plans) {
    unioned |= plan.used_fields;
  }
  EXPECT_EQ(unioned.bits, filtered.field_usage.bits);
}

}  // namespace
}  // namespace perfq::runtime
