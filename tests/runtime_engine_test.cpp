// End-to-end query engine tests: every Fig. 2 example query runs through
// parse -> analyze -> compile -> key-value store -> collection layer, and the
// results are checked against independently computed ground truth.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "runtime/engine.hpp"
#include "trace/simple.hpp"

namespace perfq::runtime {
namespace {

using compiler::compile_source;

EngineConfig small_cache_config() {
  EngineConfig config;
  // Tiny cache: every query endures heavy eviction, exercising the merge.
  config.geometry = kv::CacheGeometry::set_associative(16, 4);
  return config;
}

std::vector<PacketRecord> mixed_workload(std::uint64_t count, std::uint32_t flows,
                                         std::uint64_t seed,
                                         double drop_prob = 0.05) {
  Rng rng(seed);
  std::vector<PacketRecord> out;
  std::vector<std::uint32_t> seq(flows, 1000);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.below(flows));
    const auto t = static_cast<std::int64_t>(i) * 500;
    const auto payload = static_cast<std::uint32_t>(64 + rng.below(1200));
    trace::RecordBuilder b;
    b.flow_index(f).uniq(i + 1).len(payload + 54, payload).seq(seq[f]);
    seq[f] += payload;
    b.queue(f % 4, static_cast<std::uint32_t>(rng.below(100)));
    if (rng.chance(drop_prob)) {
      b.dropped_at(Nanos{t});
    } else {
      b.times(Nanos{t}, Nanos{t + 200 + static_cast<std::int64_t>(rng.below(2000))});
    }
    out.push_back(b.build());
  }
  return out;
}

TEST(Engine, PerFlowCountersMatchGroundTruth) {
  QueryEngine engine(compile_source("SELECT COUNT, SUM(pkt_len) GROUPBY srcip"),
                     small_cache_config());
  const auto records = mixed_workload(5000, 40, 1);
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> truth;
  for (const auto& rec : records) {
    engine.process(rec);
    auto& [cnt, bytes] = truth[rec.pkt.flow.src_ip];
    ++cnt;
    bytes += rec.pkt.pkt_len;
  }
  engine.finish(Nanos{1'000'000'000});

  const ResultTable& result = engine.result();
  EXPECT_EQ(result.row_count(), truth.size());
  const std::size_t ip_col = result.column("srcip");
  const std::size_t cnt_col = result.column("COUNT");
  const std::size_t sum_col = result.column("SUM(pkt_len)");
  for (const auto& row : result.rows()) {
    const auto ip = static_cast<std::uint32_t>(row[ip_col]);
    ASSERT_TRUE(truth.count(ip) > 0);
    EXPECT_DOUBLE_EQ(row[cnt_col], static_cast<double>(truth[ip].first));
    EXPECT_DOUBLE_EQ(row[sum_col], static_cast<double>(truth[ip].second));
  }
  // Sanity: the tiny cache actually evicted.
  EXPECT_GT(engine.store_stats()[0].cache.evictions, 0u);
}

TEST(Engine, LatencyEwmaQueryRunsAndIsLinear) {
  QueryEngine engine(compile_source(R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)",
                                    {{"alpha", 0.25}}),
                     small_cache_config());
  // No drops: the literal fold would fold infinities into the average.
  const auto records = mixed_workload(4000, 25, 2, /*drop_prob=*/0.0);
  std::map<FiveTuple, double> truth;
  for (const auto& rec : records) {
    engine.process(rec);
    auto [it, inserted] = truth.try_emplace(rec.pkt.flow, 0.0);
    it->second = 0.75 * it->second +
                 0.25 * static_cast<double>((rec.tout - rec.tin).count());
  }
  engine.finish(Nanos{1});

  const auto stats = engine.store_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(kv::is_linear(stats[0].linearity));
  EXPECT_GT(stats[0].cache.evictions, 0u);

  const ResultTable& result = engine.result();
  EXPECT_EQ(result.row_count(), truth.size());
  const std::size_t srcip = result.column("srcip");
  const std::size_t lat = result.column("lat_est");
  std::size_t checked = 0;
  for (const auto& row : result.rows()) {
    for (const auto& [tuple, want] : truth) {
      if (static_cast<double>(tuple.src_ip) == row[srcip]) {
        EXPECT_NEAR(row[lat], want, 1e-6 * std::max(1.0, want));
        ++checked;
        break;
      }
    }
  }
  EXPECT_EQ(checked, truth.size());
}

TEST(Engine, WhereFiltersInput) {
  QueryEngine engine(
      compile_source("SELECT COUNT GROUPBY srcip WHERE proto == TCP"),
      small_cache_config());
  auto tcp = trace::RecordBuilder{}.flow_index(1).build();
  auto udp = trace::RecordBuilder{}.flow_index(2).build();
  udp.pkt.flow.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  engine.process(tcp);
  engine.process(udp);
  engine.process(tcp);
  engine.finish(Nanos{1});
  EXPECT_EQ(engine.result().row_count(), 1u);
  EXPECT_DOUBLE_EQ(engine.result().rows()[0][1], 2.0);
}

TEST(Engine, PerFlowLossRateJoin) {
  // Fig. 2 "Per-flow loss rate": R2.COUNT / R1.COUNT via JOIN.
  QueryEngine engine(compile_source(R"(
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON 5tuple
)"),
                     small_cache_config());
  const auto records = mixed_workload(6000, 30, 3, /*drop_prob=*/0.1);
  std::map<FiveTuple, std::pair<double, double>> truth;  // total, dropped
  for (const auto& rec : records) {
    engine.process(rec);
    auto& [total, dropped] = truth[rec.pkt.flow];
    total += 1.0;
    if (rec.dropped()) dropped += 1.0;
  }
  engine.finish(Nanos{1});

  const ResultTable& r3 = engine.result();
  const std::size_t srcip = r3.column("srcip");
  const std::size_t ratio = r3.column("R2.COUNT / R1.COUNT");
  std::size_t with_drops = 0;
  for (const auto& [tuple, counts] : truth) {
    if (counts.second > 0) ++with_drops;
  }
  EXPECT_EQ(r3.row_count(), with_drops) << "join is inner: drop-free flows absent";
  for (const auto& row : r3.rows()) {
    bool found = false;
    for (const auto& [tuple, counts] : truth) {
      if (static_cast<double>(tuple.src_ip) == row[srcip]) {
        EXPECT_NEAR(row[ratio], counts.second / counts.first, 1e-12);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Engine, HighLatencyFlowsComposition) {
  // Fig. 2 "Per-flow high latency packets": GROUPBY pkt_uniq on the switch,
  // then GROUPBY 5tuple over the result in the collection layer.
  QueryEngine engine(compile_source(R"(
def sum_lat (lat, (tin, tout)): lat = lat + tout - tin

R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq
R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE lat > 1500
)"),
                     small_cache_config());
  const auto records = mixed_workload(3000, 20, 4, /*drop_prob=*/0.0);
  std::map<FiveTuple, double> truth;  // # high-latency packets per flow
  for (const auto& rec : records) {
    engine.process(rec);
    if (static_cast<double>((rec.tout - rec.tin).count()) > 1500.0) {
      truth[rec.pkt.flow] += 1.0;
    }
  }
  engine.finish(Nanos{1});

  const ResultTable& r2 = engine.result();
  EXPECT_EQ(r2.row_count(), truth.size());
  const std::size_t srcip = r2.column("srcip");
  const std::size_t count = r2.column("COUNT");
  for (const auto& row : r2.rows()) {
    bool found = false;
    for (const auto& [tuple, want] : truth) {
      if (static_cast<double>(tuple.src_ip) == row[srcip]) {
        EXPECT_DOUBLE_EQ(row[count], want);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Engine, HighPercentileQueueQuery) {
  // Fig. 2 "High 99th percentile queue size".
  QueryEngine engine(compile_source(R"(
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

R1 = SELECT qid, perc GROUPBY qid
R2 = SELECT * FROM R1 WHERE perc.high / perc.tot > 0.2
)",
                                    {{"K", 80.0}}),
                     small_cache_config());
  const auto records = mixed_workload(4000, 16, 5);
  std::map<std::uint32_t, std::pair<double, double>> truth;  // qid -> tot, high
  for (const auto& rec : records) {
    engine.process(rec);
    auto& [tot, high] = truth[rec.qid];
    tot += 1.0;
    if (rec.qsize > 80) high += 1.0;
  }
  engine.finish(Nanos{1});

  std::size_t expected = 0;
  for (const auto& [qid, th] : truth) {
    if (th.second / th.first > 0.2) ++expected;
  }
  EXPECT_EQ(engine.result().row_count(), expected);
}

TEST(Engine, StreamSelectSinkCollectsMatches) {
  QueryEngine engine(
      compile_source("SELECT srcip, qid FROM T WHERE tout - tin > 1000"),
      small_cache_config());
  std::uint64_t expected = 0;
  const auto records = mixed_workload(2000, 10, 6, 0.0);
  for (const auto& rec : records) {
    engine.process(rec);
    if ((rec.tout - rec.tin).count() > 1000) ++expected;
  }
  engine.finish(Nanos{1});
  EXPECT_EQ(engine.result().row_count(), expected);
  EXPECT_EQ(engine.result().schema().size(), 2u);
}

TEST(Engine, NonLinearQueryTracksAccuracy) {
  QueryEngine engine(compile_source(R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP
)"),
                     [] {
                       EngineConfig c;
                       c.geometry = kv::CacheGeometry::set_associative(16, 4);
                       return c;
                     }());
  // Phase 1: ten flows that never return after phase 2 begins -> they are
  // evicted exactly once and stay valid. Phase 2: 96 churning flows over a
  // 64-slot cache -> mostly invalid. Accuracy must land strictly in (0, 1).
  for (const auto& rec : trace::round_robin_records(100, 10)) {
    engine.process(rec);
  }
  Rng rng(7);
  std::vector<std::uint32_t> seq(96, 1000);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.below(96));
    auto rec = trace::RecordBuilder{}
                   .flow_index(1000 + f)
                   .seq(seq[f])
                   .times(Nanos{static_cast<std::int64_t>(i) * 100},
                          Nanos{static_cast<std::int64_t>(i) * 100 + 50})
                   .build();
    seq[f] += rec.pkt.payload_len;
    engine.process(rec);
  }
  engine.finish(Nanos{1});

  const auto stats = engine.store_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].linearity, kv::Linearity::kNotLinear);
  EXPECT_GT(stats[0].cache.evictions, 0u);
  EXPECT_LT(stats[0].accuracy.accuracy(), 1.0)
      << "with heavy eviction some keys must be invalid";
  EXPECT_GT(stats[0].accuracy.accuracy(), 0.0);
}

TEST(Engine, OutOfSeqEndToEndMatchesGroundTruth) {
  QueryEngine engine(compile_source(R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP
)"),
                     small_cache_config());
  const auto records = mixed_workload(4000, 24, 8, 0.0);
  std::map<FiveTuple, std::pair<double, double>> truth;  // lastseq, count
  for (const auto& rec : records) {
    engine.process(rec);
    auto [it, inserted] = truth.try_emplace(rec.pkt.flow, 0.0, 0.0);
    auto& [lastseq, oos] = it->second;
    if (lastseq + 1.0 != static_cast<double>(rec.pkt.tcp_seq)) oos += 1.0;
    lastseq = static_cast<double>(rec.pkt.tcp_seq) +
              static_cast<double>(rec.pkt.payload_len);
  }
  engine.finish(Nanos{1});

  const auto stats = engine.store_stats();
  EXPECT_GT(stats[0].cache.evictions, 100u) << "must stress the h=1 merge";

  const ResultTable& result = engine.result();
  EXPECT_EQ(result.row_count(), truth.size());
  const std::size_t srcip = result.column("srcip");
  const std::size_t oos_col = result.column("oos_count");
  for (const auto& row : result.rows()) {
    for (const auto& [tuple, want] : truth) {
      if (static_cast<double>(tuple.src_ip) == row[srcip]) {
        EXPECT_DOUBLE_EQ(row[oos_col], want.second);
        break;
      }
    }
  }
}

TEST(Engine, NamedIntermediateTablesAccessible) {
  QueryEngine engine(compile_source(R"(
R1 = SELECT COUNT GROUPBY srcip
R2 = SELECT srcip, COUNT FROM R1 WHERE COUNT > 2
)"),
                     small_cache_config());
  for (const auto& rec : mixed_workload(100, 5, 9)) engine.process(rec);
  engine.finish(Nanos{1});
  EXPECT_GE(engine.table("R1").row_count(), engine.table("R2").row_count());
  EXPECT_THROW((void)engine.table("R9"), QueryError);
}

TEST(Engine, BatchProcessingMatchesScalarExactly) {
  // process_batch (up-front key extraction + bucket prefetch) must be
  // observationally identical to per-record process(): same result tables,
  // same cache statistics, same refresh count.
  const char* source = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

R1 = SELECT 5tuple, ewma GROUPBY 5tuple
R2 = SELECT srcip, qid FROM T WHERE tout - tin > 1000
)";
  const auto records = mixed_workload(5000, 40, 21);

  EngineConfig config = small_cache_config();
  config.refresh_interval = Nanos{200'000};  // exercise mid-batch refreshes

  QueryEngine scalar(compile_source(source, {{"alpha", 0.125}}), config);
  for (const auto& rec : records) scalar.process(rec);
  scalar.finish(Nanos{1'000'000'000});

  QueryEngine batched(compile_source(source, {{"alpha", 0.125}}), config);
  batched.process_batch(records);
  batched.finish(Nanos{1'000'000'000});

  EXPECT_EQ(batched.records_processed(), scalar.records_processed());
  EXPECT_EQ(batched.refresh_count(), scalar.refresh_count());
  const auto ss = scalar.store_stats();
  const auto bs = batched.store_stats();
  ASSERT_EQ(ss.size(), bs.size());
  for (std::size_t i = 0; i < ss.size(); ++i) {
    EXPECT_EQ(bs[i].cache.packets, ss[i].cache.packets);
    EXPECT_EQ(bs[i].cache.hits, ss[i].cache.hits);
    EXPECT_EQ(bs[i].cache.evictions, ss[i].cache.evictions);
    EXPECT_EQ(bs[i].backing_writes, ss[i].backing_writes);
  }
  for (const char* table : {"R1", "R2"}) {
    const ResultTable& st = scalar.table(table);
    const ResultTable& bt = batched.table(table);
    ASSERT_EQ(bt.row_count(), st.row_count()) << table;
    for (std::size_t r = 0; r < st.row_count(); ++r) {
      const auto& srow = st.rows()[r];
      const auto& brow = bt.rows()[r];
      ASSERT_EQ(brow.size(), srow.size());
      for (std::size_t c = 0; c < srow.size(); ++c) {
        EXPECT_EQ(brow[c], srow[c]) << table << " row " << r << " col " << c;
      }
    }
  }
}

TEST(Engine, ApiMisuseThrows) {
  QueryEngine engine(compile_source("SELECT COUNT GROUPBY srcip"));
  EXPECT_THROW((void)engine.result(), Error);  // before finish
  engine.finish(Nanos{1});
  EXPECT_THROW(engine.process(trace::RecordBuilder{}.build()), Error);
}

TEST(Engine, ComputedKeyGroupByMatchesGroundTruth) {
  // A computed-key GROUPBY (expression component alongside a plain field)
  // must take the expression-tree extraction path — the fast-field path is
  // cleared for mixed plans — and still produce exactly the grouping the
  // expression defines.
  QueryEngine engine(compile_source("SELECT COUNT GROUPBY srcip, pkt_len / 256"),
                     small_cache_config());
  EXPECT_TRUE(engine.program().switch_plans.at(0).fast_key_fields.empty());
  const auto records = mixed_workload(5000, 40, 7);
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> truth;
  for (const auto& rec : records) {
    engine.process(rec);
    // Same truncation as extract_key: the expression value as an unsigned
    // integer (pkt_len / 256 is nonnegative, so plain truncation).
    const auto bucket = static_cast<std::uint64_t>(
        static_cast<double>(rec.pkt.pkt_len) / 256.0);
    ++truth[{rec.pkt.flow.src_ip, bucket}];
  }
  engine.finish(Nanos{1'000'000'000});

  const ResultTable& result = engine.result();
  ASSERT_EQ(result.row_count(), truth.size());
  const std::size_t ip_col = result.column("srcip");
  const std::size_t bucket_col = result.column("pkt_len / 256");
  const std::size_t cnt_col = result.column("COUNT");
  for (const auto& row : result.rows()) {
    const auto key = std::make_pair(
        static_cast<std::uint64_t>(row[ip_col]),
        static_cast<std::uint64_t>(row[bucket_col]));
    ASSERT_TRUE(truth.count(key) > 0)
        << "unexpected group (" << key.first << ", " << key.second << ")";
    EXPECT_EQ(static_cast<std::uint64_t>(row[cnt_col]), truth[key]);
  }
}

TEST(Engine, FinishTwiceAndProcessAfterFinishThrowCleanly) {
  const auto records = mixed_workload(200, 10, 33);
  QueryEngine engine(compile_source("SELECT COUNT GROUPBY srcip"));
  engine.process_batch(records);
  engine.finish(Nanos{1'000'000'000});
  EXPECT_NO_THROW((void)engine.result());
  EXPECT_THROW(engine.finish(Nanos{2'000'000'000}), Error);
  EXPECT_THROW(engine.process(records[0]), Error);
  EXPECT_THROW(engine.process_batch(records), Error);
  // The failed calls must not have corrupted the finished state.
  EXPECT_NO_THROW((void)engine.result());
  EXPECT_EQ(engine.records_processed(), 200u);
}

}  // namespace
}  // namespace perfq::runtime
