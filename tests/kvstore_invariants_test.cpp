// Parameterized invariant sweeps over the cache: accounting identities that
// must hold for EVERY (geometry, policy, workload skew) combination.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "kvstore/builtin_folds.hpp"
#include "kvstore/kvstore.hpp"
#include "trace/simple.hpp"

namespace perfq::kv {
namespace {

struct SweepCase {
  std::string name;
  CacheGeometry geometry;
  EvictionPolicy policy;
  double zipf_s;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> out;
  const std::vector<std::pair<std::string, CacheGeometry>> geometries{
      {"hash64", CacheGeometry::hash_table(64)},
      {"full64", CacheGeometry::fully_associative(64)},
      {"way4x16", CacheGeometry::set_associative(64, 4)},
      {"way8x4", CacheGeometry::set_associative(32, 8)},
      {"single", CacheGeometry{1, 1}},
  };
  const std::vector<std::pair<std::string, EvictionPolicy>> policies{
      {"lru", EvictionPolicy::kLru},
      {"fifo", EvictionPolicy::kFifo},
      {"rand", EvictionPolicy::kRandom},
  };
  for (const auto& [gn, g] : geometries) {
    for (const auto& [pn, p] : policies) {
      for (const double s : {0.0, 1.1}) {
        out.push_back(
            SweepCase{gn + "_" + pn + (s == 0.0 ? "_uniform" : "_zipf"), g, p, s});
      }
    }
  }
  return out;
}

class CacheInvariantTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CacheInvariantTest, AccountingIdentitiesHold) {
  const SweepCase& c = GetParam();
  auto kernel = std::make_shared<CountKernel>();
  Cache cache(c.geometry, kernel, 0xABCD, c.policy);

  std::uint64_t sink_events = 0;
  double evicted_count_sum = 0.0;
  cache.set_eviction_sink([&](EvictedValue&& ev) {
    ++sink_events;
    evicted_count_sum += ev.state[0];
    EXPECT_GT(ev.packets, 0u);
    EXPECT_LE(ev.first_tin, ev.evict_time);
  });

  const auto records = trace::zipf_records(8000, 300, c.zipf_s, 17);
  for (const auto& rec : records) {
    const auto bytes = rec.pkt.flow.to_bytes();
    cache.process(
        Key{std::span<const std::byte>{bytes.data(), bytes.size()}}, rec);
  }

  const CacheStats& s = cache.stats();
  // Identity 1: every packet is a hit or an initialization.
  EXPECT_EQ(s.hits + s.initializations, s.packets);
  EXPECT_EQ(s.packets, records.size());
  // Identity 2: occupancy = installs - departures.
  EXPECT_EQ(cache.occupancy(), s.initializations - s.evictions);
  // Identity 3: occupancy bounded by capacity.
  EXPECT_LE(cache.occupancy(), c.geometry.total_slots());
  // Identity 4: sink saw exactly the capacity evictions so far.
  EXPECT_EQ(sink_events, s.evictions);

  cache.flush(Nanos{std::int64_t{1} << 60});
  // Identity 5: after flush everything left through the sink, and the per-
  // key counts sum to the total packet count (conservation of packets).
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_EQ(sink_events, s.evictions + s.flushes);
  EXPECT_DOUBLE_EQ(evicted_count_sum, static_cast<double>(records.size()));
}

TEST_P(CacheInvariantTest, SplitStoreConservesPacketsEndToEnd) {
  const SweepCase& c = GetParam();
  auto kernel = std::make_shared<CountKernel>();
  KeyValueStore store(c.geometry, kernel, 0xABCD, c.policy);
  const auto records = trace::zipf_records(6000, 200, c.zipf_s, 29);
  for (const auto& rec : records) {
    const auto bytes = rec.pkt.flow.to_bytes();
    store.process(Key{std::span<const std::byte>{bytes.data(), bytes.size()}},
                  rec);
  }
  store.flush(Nanos{std::int64_t{1} << 60});
  double total = 0.0;
  store.backing().for_each(
      [&](const Key&, const StateVector& v, bool) { total += v[0]; });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(records.size()))
      << "merged per-key counts must sum to the packet count";
  EXPECT_EQ(store.backing().writes(),
            store.cache().stats().evictions + store.cache().stats().flushes);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheInvariantTest,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& p) {
                           return p.param.name;
                         });

}  // namespace
}  // namespace perfq::kv
