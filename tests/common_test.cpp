// Foundation utilities: hashing, RNG/distributions, stats, tables, time.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace perfq {
namespace {

TEST(Time, LiteralsAndArithmetic) {
  EXPECT_EQ((1_ms).count(), 1'000'000);
  EXPECT_EQ((2_s + 500_ms).count(), 2'500'000'000LL);
  EXPECT_EQ((1_us - 1000_ns).count(), 0);
  EXPECT_TRUE(Nanos::infinity().is_infinite());
  EXPECT_LT(1_ms, 1_s);
  EXPECT_DOUBLE_EQ(to_seconds(1500_ms), 1.5);
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(to_string(Nanos{42}), "42 ns");
  EXPECT_EQ(to_string(1_ms), "1.000 ms");
  EXPECT_EQ(to_string(Nanos::infinity()), "inf");
}

TEST(Hash, DeterministicAndSeedSensitive) {
  const std::string data = "performance query";
  const auto h1 = hash_string(data);
  const auto h2 = hash_string(data);
  const auto h3 = hash_string(data, 1);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(Hash, AvalancheOnSingleBitFlips) {
  // Flipping one input bit should flip ~half the output bits.
  std::array<std::byte, 16> data{};
  const auto base = hash_bytes(data);
  double total_flips = 0;
  int trials = 0;
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = data;
      copy[byte] ^= std::byte{static_cast<unsigned char>(1 << bit)};
      const auto h = hash_bytes(copy);
      total_flips += __builtin_popcountll(base ^ h);
      ++trials;
    }
  }
  const double avg = total_flips / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, LongInputsUseWideMixing) {
  std::vector<std::byte> a(100, std::byte{1});
  std::vector<std::byte> b = a;
  b[57] = std::byte{2};
  EXPECT_NE(hash_bytes(a), hash_bytes(b));
}

TEST(Hash, ReduceRangeIsUniformish) {
  Rng rng(5);
  std::array<std::uint64_t, 16> buckets{};
  for (int i = 0; i < 160000; ++i) ++buckets[reduce_range(rng(), 16)];
  for (const auto b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), 10000.0, 500.0);
  }
}

TEST(Rng, DeterministicStreams) {
  Rng a(1);
  Rng b(1);
  Rng c(2);
  EXPECT_EQ(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(9);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  EXPECT_NE(c1(), c2());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.between(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.pareto(1.0, 1.2));
  EXPECT_GT(stats.max(), 100.0);
  EXPECT_NEAR(stats.mean(), 6.0, 1.5);  // alpha/(alpha-1) = 6
}

TEST(Zipf, SmallNMatchesExactPmf) {
  Rng rng(7);
  ZipfDistribution zipf(4, 1.0);
  std::array<std::uint64_t, 4> counts{};
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  const double hn = 1.0 + 0.5 + 1.0 / 3 + 0.25;
  for (std::size_t k = 0; k < 4; ++k) {
    const double expected = (1.0 / static_cast<double>(k + 1)) / hn;
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, expected, 0.01) << k;
  }
}

TEST(Zipf, LargeNUsesRejectionInversionAndStaysInRange) {
  Rng rng(8);
  ZipfDistribution zipf(10'000'000, 1.1);
  std::uint64_t max_seen = 0;
  std::uint64_t min_seen = ~std::uint64_t{0};
  for (int i = 0; i < 100000; ++i) {
    const auto v = zipf(rng);
    max_seen = std::max(max_seen, v);
    min_seen = std::min(min_seen, v);
    ASSERT_LT(v, 10'000'000u);
  }
  EXPECT_EQ(min_seen, 0u) << "rank 0 dominates a Zipf(1.1)";
  EXPECT_GT(max_seen, 10'000u) << "tail must be sampled";
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -1.0), std::invalid_argument);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Histogram, QuantilesInterpolate) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_EQ(h.underflow(), 0u);
  h.add(-5);
  h.add(1000);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(QuantileSample, NearestRank) {
  QuantileSample q;
  for (int i = 1; i <= 100; ++i) q.add(i);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.quantile(0.5), 50.0, 1.0);
  EXPECT_THROW((void)q.quantile(1.5), std::invalid_argument);
}

TEST(TextTable, RendersAlignedAndCsv) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nx,1\nlonger,22\n");
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), std::logic_error);
}

TEST(Format, SiSuffixes) {
  EXPECT_EQ(fmt_si(802'000.0), "802.00K");
  EXPECT_EQ(fmt_si(22.6e6), "22.60M");
  EXPECT_EQ(fmt_si(1.5e9), "1.50G");
  EXPECT_EQ(fmt_percent(0.0355), "3.55%");
}

TEST(Error, HierarchyAndFormatting) {
  const QueryError e{"parse", "bad token", 3, 7};
  EXPECT_EQ(std::string{e.what()}, "parse error at 3:7: bad token");
  EXPECT_EQ(e.line(), 3);
  EXPECT_THROW(check(false, "boom"), InternalError);
  EXPECT_NO_THROW(check(true, "fine"));
}

}  // namespace
}  // namespace perfq
