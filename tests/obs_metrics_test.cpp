// The telemetry layer's own test suite (obs/): counter slots and latency
// histograms as units, then the metrics coherence contract end-to-end —
// counter exactness against an oracle at quiescent points on every engine
// topology, mid-run reads, the exporter round-trip property, stream-sink
// drop accounting, the background sampler, and concurrent metrics() reads
// while another thread folds (the test the TSan CI job exists for).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_export.hpp"
#include "runtime/engine_builder.hpp"
#include "runtime/stream_sink.hpp"
#include "runtime_test_util.hpp"
#include "trace/replay.hpp"

namespace perfq::runtime {
namespace {

// ---- units ------------------------------------------------------------------

TEST(RelaxedU64, CountsExactly) {
  obs::RelaxedU64 c;
  EXPECT_EQ(static_cast<std::uint64_t>(c), 0u);
  ++c;
  c += 41;
  EXPECT_EQ(static_cast<std::uint64_t>(c), 42u);
  c.sub(2);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 40u);
  c.set_max(100);
  c.set_max(7);  // no effect: below the current value
  EXPECT_EQ(static_cast<std::uint64_t>(c), 100u);

  // Copy semantics: a snapshot, not a shared slot.
  obs::RelaxedU64 copy = c;
  ++c;
  EXPECT_EQ(static_cast<std::uint64_t>(copy), 100u);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 101u);
}

TEST(LatencyHistogram, BucketsByLog2AndSnapshotsExactCounts) {
  obs::LatencyHistogram h;
  h.record(0);     // bucket 0
  h.record(1);     // bit_width(1) = 1
  h.record(1000);  // bit_width(1000) = 10
  h.record(1000);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_ns, 2001u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[10], 2u);
  EXPECT_DOUBLE_EQ(snap.mean_ns(), 2001.0 / 4.0);

  // Quantiles are bucket-interpolated: the p99 of this sample must land in
  // the 1000 ns bucket, i.e. within [2^9, 2^10).
  const double p99 = snap.quantile_ns(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  // And quantiles are monotone in q.
  EXPECT_LE(snap.quantile_ns(0.25), snap.quantile_ns(0.75));
}

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  const obs::HistogramSnapshot snap = obs::LatencyHistogram{}.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_ns(), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile_ns(0.5), 0.0);
}

TEST(CommonHistogram, AddCountMatchesRepeatedAdd) {
  // The bulk-load path HistogramSnapshot::quantile_ns() depends on must be
  // indistinguishable from n individual add() calls.
  Histogram bulk(0.0, 48.0, 48);
  Histogram scalar(0.0, 48.0, 48);
  bulk.add_count(3.5, 7);
  bulk.add_count(-1.0, 2);  // underflow
  bulk.add_count(99.0, 3);  // overflow
  for (int i = 0; i < 7; ++i) scalar.add(3.5);
  for (int i = 0; i < 2; ++i) scalar.add(-1.0);
  for (int i = 0; i < 3; ++i) scalar.add(99.0);
  EXPECT_EQ(bulk.total(), scalar.total());
  EXPECT_EQ(bulk.underflow(), scalar.underflow());
  EXPECT_EQ(bulk.overflow(), scalar.overflow());
  for (std::size_t b = 0; b < bulk.buckets(); ++b) {
    EXPECT_EQ(bulk.bucket(b), scalar.bucket(b)) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(bulk.quantile(0.5), scalar.quantile(0.5));
}

// ---- counter exactness against the oracle -----------------------------------

struct Topology {
  const char* name;
  std::size_t shards;       // 0 = serial
  std::size_t dispatchers;  // ignored when serial
};
const Topology kTopologies[] = {
    {"serial", 0, 0},       {"d1s1", 1, 1}, {"d1s4", 4, 1},
    {"d2s1", 1, 2},         {"d2s4", 4, 2},
};

std::unique_ptr<Engine> build_count_engine(const Topology& topo,
                                           kv::CacheGeometry geometry) {
  EngineBuilder builder(compiler::compile_source("SELECT COUNT GROUPBY 5tuple"));
  builder.geometry(geometry);
  if (topo.shards > 0) builder.sharded(topo.shards).dispatchers(topo.dispatchers);
  return builder.build();
}

TEST(MetricsExactness, CountersMatchOracleAtQuiescentPoints) {
  const auto records = test_workload();
  for (const Topology& topo : kTopologies) {
    SCOPED_TRACE(topo.name);
    // 128 buckets — divisible by every shard count used here.
    auto engine = build_count_engine(
        topo, kv::CacheGeometry::set_associative(1024, 8));
    const std::span<const PacketRecord> span(records);
    std::uint64_t batches = 0;
    for (std::size_t base = 0; base < span.size(); base += 512) {
      engine->process_batch(span.subspan(base, std::min<std::size_t>(
                                                   512, span.size() - base)));
      ++batches;
    }
    engine->finish(11_s);

    const EngineMetrics m = engine->metrics();
    EXPECT_EQ(m.engine, topo.shards > 0 ? "sharded" : "serial");
    EXPECT_EQ(m.records, records.size());
    EXPECT_EQ(m.batches, batches);
    EXPECT_FALSE(m.faulted);
    ASSERT_EQ(m.queries.size(), 1u);
    const StoreStats& q = m.queries[0];
    // Every record hit the one store; every packet either hit or initialized.
    EXPECT_EQ(static_cast<std::uint64_t>(q.cache.packets), records.size());
    EXPECT_EQ(static_cast<std::uint64_t>(q.cache.hits) +
                  static_cast<std::uint64_t>(q.cache.initializations),
              static_cast<std::uint64_t>(q.cache.packets));
    // metrics() and store_stats() are the same surface.
    const auto stats = engine->store_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(static_cast<std::uint64_t>(stats[0].cache.packets),
              static_cast<std::uint64_t>(q.cache.packets));
    EXPECT_EQ(stats[0].keys, q.keys);

    if (topo.shards > 0) {
      // After finish() the pipeline is drained: eviction flow balances.
      ASSERT_EQ(m.shards.size(), topo.shards);
      for (const ShardMetrics& s : m.shards) {
        EXPECT_EQ(s.evictions_pushed, s.evictions_absorbed)
            << "shard " << s.shard;
        // finish() joined the pipeline: an orderly exit latches the flags
        // (only `faulted` distinguishes a crash from this).
        EXPECT_TRUE(s.worker_exited);
      }
      EXPECT_TRUE(m.merge_exited);
      EXPECT_EQ(m.rings.size(), topo.dispatchers * topo.shards);
    } else {
      EXPECT_TRUE(m.shards.empty());
      EXPECT_TRUE(m.rings.empty());
    }
  }
}

TEST(MetricsExactness, SmallGeometryShowsEvictionPressure) {
  const auto records = test_workload();
  for (const Topology& topo : kTopologies) {
    SCOPED_TRACE(topo.name);
    // 16 buckets, 64 pairs: 400 flows thrash it, so evictions MUST show up.
    auto engine =
        build_count_engine(topo, kv::CacheGeometry::set_associative(64, 4));
    engine->process_batch(records);
    engine->finish(11_s);
    const EngineMetrics m = engine->metrics();
    ASSERT_EQ(m.queries.size(), 1u);
    EXPECT_GT(static_cast<std::uint64_t>(m.queries[0].cache.evictions), 0u);
    if (topo.shards > 0) {
      std::uint64_t pushed = 0;
      for (const ShardMetrics& s : m.shards) pushed += s.evictions_pushed;
      EXPECT_GT(pushed, 0u);
    }
  }
}

TEST(MetricsExactness, MidRunReadsAreMonotoneAndQuiescentExact) {
  const auto records = test_workload();
  const std::span<const PacketRecord> span(records);
  auto engine = build_count_engine(kTopologies[0],  // serial
                                   kv::CacheGeometry::set_associative(1024, 8));
  engine->process_batch(span.first(span.size() / 2));
  const EngineMetrics m1 = engine->metrics();
  // Serial engine between batches IS a quiescent point: exact invariants.
  EXPECT_EQ(m1.records, span.size() / 2);
  EXPECT_EQ(static_cast<std::uint64_t>(m1.queries[0].cache.hits) +
                static_cast<std::uint64_t>(m1.queries[0].cache.initializations),
            m1.records);
  engine->process_batch(span.subspan(span.size() / 2));
  const EngineMetrics m2 = engine->metrics();
  EXPECT_EQ(m2.records, span.size());
  EXPECT_GE(m2.batches, m1.batches);
  engine->finish(11_s);
}

// ---- ingest / replay accounting ---------------------------------------------

TEST(MetricsIngest, RecordIngestAccumulatesAcrossFeeds) {
  auto engine = build_count_engine(kTopologies[0],
                                   kv::CacheGeometry::set_associative(1024, 8));
  trace::IngestStats a;
  a.parsed = 10;
  a.truncated = 2;
  trace::IngestStats b;
  b.parsed = 5;
  b.bad_length = 1;
  engine->record_ingest(a);
  engine->record_ingest(b);
  const EngineMetrics m = engine->metrics();
  EXPECT_EQ(static_cast<std::uint64_t>(m.ingest.parsed), 15u);
  EXPECT_EQ(static_cast<std::uint64_t>(m.ingest.truncated), 2u);
  EXPECT_EQ(static_cast<std::uint64_t>(m.ingest.bad_length), 1u);
  EXPECT_EQ(m.ingest.dropped(), 3u);
}

TEST(MetricsIngest, ReplayDriverRecordsItself) {
  const auto records = test_workload();
  auto engine = build_count_engine(kTopologies[0],
                                   kv::CacheGeometry::set_associative(1024, 8));
  const auto stats = trace::replay_into(*engine, records, /*batch=*/512);
  const EngineMetrics m = engine->metrics();
  EXPECT_EQ(m.replay_records, stats.records);
  EXPECT_EQ(m.replay_records, records.size());
  EXPECT_GT(m.replay_nanos, 0u);
  engine->finish(11_s);
}

// ---- stream sink drop accounting --------------------------------------------

TEST(MetricsStreams, RingSinkDropsAreExact) {
  const char* source = R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

S = SELECT srcip, pkt_len FROM T WHERE pkt_len > 300
R1 = SELECT 5tuple, counter GROUPBY 5tuple
)";
  const auto records = test_workload();
  std::uint64_t expected_rows = 0;
  for (const auto& rec : records) {
    if (rec.pkt.pkt_len > 300) ++expected_rows;
  }
  ASSERT_GT(expected_rows, 4u) << "workload too small";

  auto ring = std::make_shared<RingStreamSink>(/*capacity=*/4);
  auto engine = EngineBuilder(compiler::compile_source(source))
                    .geometry(kv::CacheGeometry::set_associative(1024, 8))
                    .stream_sink("S", ring)
                    .build();
  engine->process_batch(records);
  engine->finish(11_s);

  const EngineMetrics m = engine->metrics();
  ASSERT_EQ(m.streams.size(), 1u);
  EXPECT_EQ(m.streams[0].query, "S");
  EXPECT_EQ(m.streams[0].rows_delivered, expected_rows);
  // Drop-oldest ring of capacity 4: everything but the tail is dropped.
  EXPECT_EQ(m.streams[0].rows_dropped, expected_rows - 4);
  EXPECT_EQ(ring->rows_dropped(), expected_rows - 4);
}

TEST(MetricsStreams, CappedTableSinkReportsSaturation) {
  const char* source = R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

S = SELECT srcip, pkt_len FROM T
R1 = SELECT 5tuple, counter GROUPBY 5tuple
)";
  const auto records = test_workload();
  auto engine = EngineBuilder(compiler::compile_source(source))
                    .geometry(kv::CacheGeometry::set_associative(1024, 8))
                    .max_stream_rows(32)
                    .build();
  engine->process_batch(records);
  engine->finish(11_s);
  const EngineMetrics m = engine->metrics();
  ASSERT_EQ(m.streams.size(), 1u);
  EXPECT_TRUE(m.streams[0].saturated);
  EXPECT_GT(m.streams[0].rows_dropped, 0u);
  // Delivered counts offers, dropped counts the rejected suffix.
  EXPECT_EQ(m.streams[0].rows_delivered,
            32u + m.streams[0].rows_dropped);
}

// ---- exporter round-trip ----------------------------------------------------

TEST(MetricsExport, EveryVisitedMetricAppearsInBothExporters) {
  const auto records = test_workload();
  // Sharded with two dispatchers and a stream: exercises every metric family.
  const char* source = R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

S = SELECT srcip, pkt_len FROM T WHERE pkt_len > 300
R1 = SELECT 5tuple, counter GROUPBY 5tuple
)";
  auto engine = EngineBuilder(compiler::compile_source(source))
                    .geometry(kv::CacheGeometry::set_associative(1024, 8))
                    .sharded(4)
                    .dispatchers(2)
                    .build();
  engine->process_batch(records);
  engine->finish(11_s);
  const EngineMetrics m = engine->metrics();

  std::vector<std::string> names;
  obs::visit_metrics(m, [&](std::string_view name, const obs::MetricLabels&,
                            double) { names.emplace_back(name); });
  ASSERT_FALSE(names.empty());

  const std::string json = obs::metrics_to_json(m);
  const std::string prom = obs::metrics_to_prometheus(m);
  for (const std::string& name : names) {
    EXPECT_NE(json.find("\"" + name + "\""), std::string::npos)
        << "metric " << name << " missing from JSON export";
    EXPECT_NE(prom.find("perfq_" + name), std::string::npos)
        << "metric " << name << " missing from Prometheus export";
  }
  // The human renderers never throw and are non-empty.
  EXPECT_FALSE(obs::format_metrics(m).empty());
  EXPECT_FALSE(obs::format_pipeline(m).empty());
}

// ---- background sampler -----------------------------------------------------

TEST(MetricsSampler, CollectsABoundedMonotoneSeries) {
  const auto records = test_workload();
  auto engine =
      EngineBuilder(compiler::compile_source("SELECT COUNT GROUPBY 5tuple"))
          .geometry(kv::CacheGeometry::set_associative(1024, 8))
          .metrics_sampler(std::chrono::milliseconds(1), /*capacity=*/8)
          .build();
  const std::span<const PacketRecord> span(records);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    engine->process_batch(span.first(256));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto series = engine->metrics_series();
  ASSERT_FALSE(series.empty());
  EXPECT_LE(series.size(), 8u);  // bounded: oldest samples dropped
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].elapsed_ns, series[i - 1].elapsed_ns);
    EXPECT_GE(series[i].metrics.records, series[i - 1].metrics.records);
  }
  engine->finish(11_s);
  // The wrapper is invisible to the driver surface.
  EXPECT_EQ(engine->metrics().records, engine->records_processed());
}

TEST(MetricsSampler, RejectsBadConfig) {
  EXPECT_THROW(
      EngineBuilder(compiler::compile_source("SELECT COUNT GROUPBY srcip"))
          .metrics_sampler(std::chrono::milliseconds(0))
          .build(),
      ConfigError);
  EXPECT_THROW(
      EngineBuilder(compiler::compile_source("SELECT COUNT GROUPBY srcip"))
          .metrics_sampler(std::chrono::milliseconds(1), /*capacity=*/0)
          .build(),
      ConfigError);
}

// ---- concurrent reads (the TSan test) ---------------------------------------

TEST(MetricsConcurrency, ReadableWhileShardedEngineFolds) {
  const auto records = test_workload();
  auto engine =
      EngineBuilder(compiler::compile_source("SELECT COUNT GROUPBY 5tuple"))
          .geometry(kv::CacheGeometry::set_associative(64, 4))  // heavy evictions
          .sharded(4)
          .dispatchers(2)
          .build();

  std::atomic<bool> done{false};
  std::uint64_t last_records = 0;
  bool monotone = true;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const EngineMetrics m = engine->metrics();
      if (m.records < last_records) monotone = false;
      last_records = m.records;
      // Exercise the exporters concurrently too — they only read the copy,
      // but building the copy walks every live slot.
      (void)obs::metrics_to_prometheus(m);
    }
  });
  trace::replay_into(*engine, records, /*batch=*/512, /*repeats=*/4);
  engine->finish(41_s);
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_TRUE(monotone) << "metrics().records went backwards";
  const EngineMetrics m = engine->metrics();
  EXPECT_EQ(m.records, records.size() * 4);
  EXPECT_GE(records.size() * 4, last_records);
}

}  // namespace
}  // namespace perfq::runtime
