// Parser + lexer tests over the query language, including every example
// query from the paper (Figs. 1-2 and the inline §2 examples).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "lang/parser.hpp"

namespace perfq::lang {
namespace {

TEST(Lexer, TimeSuffixesNormalizeToNanoseconds) {
  const ExprPtr e = parse_expression("tout - tin > 1ms");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->op, BinaryOp::kGt);
  EXPECT_EQ(e->rhs->kind, ExprKind::kNumber);
  EXPECT_DOUBLE_EQ(e->rhs->number, 1e6);
}

TEST(Lexer, FiveTupleIsAnIdentifier) {
  const ExprPtr e = parse_expression("5tuple");
  EXPECT_EQ(e->kind, ExprKind::kName);
  EXPECT_EQ(e->name, "5tuple");
}

TEST(Lexer, RejectsUnknownSuffix) {
  EXPECT_THROW((void)parse_expression("3kg"), QueryError);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW((void)parse_expression("a $ b"), QueryError);
}

TEST(Parser, SelectWhereFromSection2) {
  const Program p =
      parse_program("SELECT srcip, qid FROM T WHERE tout - tin > 1ms");
  ASSERT_EQ(p.queries.size(), 1u);
  const QueryDef& q = p.queries[0];
  EXPECT_EQ(q.kind, QueryDef::Kind::kSelect);
  EXPECT_EQ(q.from, "T");
  ASSERT_EQ(q.select_list.size(), 2u);
  EXPECT_EQ(to_string(*q.select_list[0].expr), "srcip");
  EXPECT_EQ(to_string(*q.where), "tout - tin > 1000000");
}

TEST(Parser, PerFlowCounters) {
  const Program p =
      parse_program("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip");
  ASSERT_EQ(p.queries.size(), 1u);
  const QueryDef& q = p.queries[0];
  EXPECT_EQ(q.kind, QueryDef::Kind::kGroupBy);
  ASSERT_EQ(q.groupby_fields.size(), 2u);
  EXPECT_EQ(to_string(*q.groupby_fields[0]), "srcip");
  EXPECT_EQ(to_string(*q.select_list[1].expr), "SUM(pkt_len)");
}

TEST(Parser, EwmaFoldDefinition) {
  const Program p = parse_program(R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)");
  ASSERT_EQ(p.folds.size(), 1u);
  const FoldDef& f = p.folds[0];
  EXPECT_EQ(f.name, "ewma");
  ASSERT_EQ(f.state_vars.size(), 1u);
  EXPECT_EQ(f.state_vars[0], "lat_est");
  ASSERT_EQ(f.packet_args.size(), 2u);
  ASSERT_EQ(f.body.size(), 1u);
  EXPECT_EQ(f.body[0].kind, Stmt::Kind::kAssign);
  EXPECT_EQ(f.body[0].target, "lat_est");
}

TEST(Parser, OutOfSeqWithSingleLineIf) {
  const Program p = parse_program(R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP
)");
  ASSERT_EQ(p.folds.size(), 1u);
  const FoldDef& f = p.folds[0];
  ASSERT_EQ(f.state_vars.size(), 2u);
  ASSERT_EQ(f.body.size(), 2u);
  EXPECT_EQ(f.body[0].kind, Stmt::Kind::kIf);
  ASSERT_EQ(f.body[0].then_body.size(), 1u);
  EXPECT_TRUE(f.body[0].else_body.empty());
  EXPECT_EQ(f.body[1].kind, Stmt::Kind::kAssign);
  EXPECT_EQ(p.queries[0].kind, QueryDef::Kind::kGroupBy);
  EXPECT_EQ(to_string(*p.queries[0].where), "proto == TCP");
}

TEST(Parser, IndentedIfElseBlocks) {
  const Program p = parse_program(R"(
def choosy (acc, (pkt_len)):
    if pkt_len > 100:
        acc = acc + pkt_len
    else:
        acc = acc + 1

SELECT 5tuple, choosy GROUPBY 5tuple
)");
  const FoldDef& f = p.folds[0];
  ASSERT_EQ(f.body.size(), 1u);
  EXPECT_EQ(f.body[0].then_body.size(), 1u);
  EXPECT_EQ(f.body[0].else_body.size(), 1u);
}

TEST(Parser, ComposedQueriesAndNames) {
  const Program p = parse_program(R"(
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON 5tuple
)");
  ASSERT_EQ(p.queries.size(), 3u);
  EXPECT_EQ(p.queries[0].result_name, "R1");
  EXPECT_EQ(p.queries[1].kind, QueryDef::Kind::kGroupBy);
  ASSERT_NE(p.queries[1].where, nullptr);
  EXPECT_EQ(to_string(*p.queries[1].where), "tout == infinity");
  const QueryDef& join = p.queries[2];
  EXPECT_EQ(join.kind, QueryDef::Kind::kJoin);
  EXPECT_EQ(join.join_left, "R1");
  EXPECT_EQ(join.join_right, "R2");
  ASSERT_EQ(join.join_keys.size(), 1u);
  EXPECT_EQ(join.join_keys[0], "5tuple");
  EXPECT_EQ(to_string(*join.select_list[0].expr), "R2.COUNT / R1.COUNT");
}

TEST(Parser, LowercaseKeywordsAccepted) {
  // Fig. 2 writes "R1 = SELECT qid, perc groupby qid" and "from".
  const Program p = parse_program(R"(
def perc ((tot, high), qin):
    if qin > 100: high = high + 1
    tot = tot + 1

R1 = select qid, perc groupby qid
R2 = select * from R1 where perc.high / perc.tot > 0.01
)");
  ASSERT_EQ(p.queries.size(), 2u);
  EXPECT_EQ(p.queries[0].kind, QueryDef::Kind::kGroupBy);
  EXPECT_EQ(p.queries[1].kind, QueryDef::Kind::kSelect);
  EXPECT_TRUE(p.queries[1].select_list[0].star);
  EXPECT_EQ(to_string(*p.queries[1].where), "perc.high / perc.tot > 0.01");
}

TEST(Parser, HighLatencyComposition) {
  const Program p = parse_program(R"(
def sum_lat (lat, (tin, tout)): lat = lat + tout - tin

R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq
R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE lat > 10ms
)");
  ASSERT_EQ(p.folds.size(), 1u);
  ASSERT_EQ(p.folds[0].body.size(), 1u);
  ASSERT_EQ(p.queries.size(), 2u);
  EXPECT_EQ(p.queries[1].from, "R1");
}

TEST(Parser, ErrorsCarryLocations) {
  try {
    (void)parse_program("SELECT FROM T");
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.stage(), "parse");
    EXPECT_GT(e.line(), 0);
  }
}

TEST(Parser, RejectsEmptyProgram) {
  EXPECT_THROW((void)parse_program("   \n  # just a comment\n"), QueryError);
}

TEST(Parser, RejectsDanglingClause) {
  EXPECT_THROW((void)parse_program("SELECT srcip FROM"), QueryError);
}

TEST(Parser, RoundTripThroughToString) {
  const char* kSource = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

R1 = SELECT 5tuple, ewma GROUPBY 5tuple WHERE proto == TCP
)";
  const Program p1 = parse_program(kSource);
  const std::string printed = to_string(p1);
  const Program p2 = parse_program(printed);
  EXPECT_EQ(printed, to_string(p2)) << "printing is not a fixed point";
}

TEST(Parser, OperatorPrecedence) {
  const ExprPtr e = parse_expression("1 + 2 * 3 > 6 and proto == TCP");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->op, BinaryOp::kAnd);
  EXPECT_EQ(to_string(*e), "1 + 2 * 3 > 6 and proto == TCP");
}

TEST(Parser, UnaryMinusAndNot) {
  const ExprPtr e = parse_expression("not -x > 3");
  EXPECT_EQ(e->kind, ExprKind::kUnary);
  EXPECT_TRUE(e->is_not);
}

// ---- recursion depth limit --------------------------------------------------

std::string nested_parens(std::size_t depth) {
  std::string source;
  source.reserve(2 * depth + 1);
  source.append(depth, '(');
  source += "1";
  source.append(depth, ')');
  return source;
}

TEST(Parser, DeepButLegalNestingParses) {
  // 200 levels sits under the 256-level cap (the outermost expression itself
  // consumes one level); the value must round-trip through the nesting.
  const ExprPtr e = parse_expression(nested_parens(200));
  EXPECT_EQ(e->kind, ExprKind::kNumber);
  EXPECT_DOUBLE_EQ(e->number, 1.0);
}

TEST(Parser, NestingBeyondTheLimitFailsCleanly) {
  // Must surface as a QueryError (the fuzz contract: never UB, never a raw
  // stack overflow — the pre-limit parser crashed ASan builds here).
  try {
    (void)parse_expression(nested_parens(257));
    FAIL() << "expected QueryError for 257-deep nesting";
  } catch (const QueryError& e) {
    EXPECT_EQ(e.stage(), "parse");
    EXPECT_NE(std::string{e.what()}.find("nesting"), std::string::npos);
  }
  // Grossly past the limit (the fuzz regime) must behave identically.
  EXPECT_THROW((void)parse_expression(nested_parens(20'000)), QueryError);
}

TEST(Parser, ExactDepthBoundary) {
  // The guard counts the outer expression plus one level per paren: with the
  // cap at 256, 255 parens are the deepest legal nesting and 256 the
  // shallowest illegal one.
  EXPECT_NO_THROW((void)parse_expression(nested_parens(255)));
  EXPECT_THROW((void)parse_expression(nested_parens(256)), QueryError);
}

TEST(Parser, NotAndMinusChainsAreIterative) {
  // `not not ...` / `----x` chains are linear, not nested: no depth limit
  // applies however long they get, and the AST still nests correctly.
  std::string nots;
  for (int i = 0; i < 2000; ++i) nots += "not ";
  nots += "x";
  const ExprPtr e = parse_expression(nots);
  EXPECT_EQ(e->kind, ExprKind::kUnary);
  EXPECT_TRUE(e->is_not);

  const std::string minuses = std::string(2000, '-') + "x";
  const ExprPtr m = parse_expression(minuses);
  EXPECT_EQ(m->kind, ExprKind::kUnary);
  EXPECT_FALSE(m->is_not);
}

TEST(Parser, NestedIfStatementsHitTheLimitCleanly) {
  // Deep if-nesting inside a fold body recurses through parse_stmt; it must
  // hit the same clean error, not the C++ stack.
  std::string body;
  std::string indent = "    ";
  for (int i = 0; i < 400; ++i) {
    body += indent + "if x > 0:\n";
    indent += "    ";
  }
  body += indent + "x = x + 1\n";
  const std::string source =
      "def f (x, (pkt_len)):\n" + body + "\nSELECT 5tuple, f GROUPBY 5tuple";
  EXPECT_THROW((void)parse_program(source), QueryError);
}

}  // namespace
}  // namespace perfq::lang
