// ResultTable behaviours: column resolution through aliases, sorting,
// rendering, and arity enforcement.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {
namespace {

lang::Schema demo_schema() {
  lang::Schema s;
  lang::Column ip;
  ip.name = "srcip";
  ip.base_field = FieldId::kSrcIp;
  s.add(std::move(ip));
  lang::Column count;
  count.name = "COUNT";
  count.aliases.push_back("n");
  s.add(std::move(count));
  return s;
}

TEST(ResultTable, ColumnResolutionUsesAliases) {
  ResultTable t(demo_schema());
  EXPECT_EQ(t.column("COUNT"), 1u);
  EXPECT_EQ(t.column("n"), 1u) << "aliases resolve";
  EXPECT_THROW((void)t.column("missing"), QueryError);
}

TEST(ResultTable, RowArityEnforced) {
  ResultTable t(demo_schema());
  EXPECT_THROW(t.add_row({1.0}), Error);
  t.add_row({1.0, 2.0});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_DOUBLE_EQ(t.at(0, "n"), 2.0);
}

TEST(ResultTable, SortDescending) {
  ResultTable t(demo_schema());
  t.add_row({1.0, 5.0});
  t.add_row({2.0, 9.0});
  t.add_row({3.0, 1.0});
  t.sort_desc("COUNT");
  EXPECT_DOUBLE_EQ(t.rows()[0][1], 9.0);
  EXPECT_DOUBLE_EQ(t.rows()[2][1], 1.0);
}

TEST(ResultTable, TextRenderingFormatsIpsAndLimits) {
  ResultTable t(demo_schema());
  t.add_row({static_cast<double>(ipv4_from_string("192.168.0.1")), 7.0});
  t.add_row({static_cast<double>(ipv4_from_string("10.0.0.9")), 3.5});
  const std::string text = t.to_text("demo", 1);
  EXPECT_NE(text.find("192.168.0.1"), std::string::npos)
      << "IP columns render dotted-quad";
  EXPECT_NE(text.find("(1 more rows)"), std::string::npos);
  EXPECT_EQ(text.find("10.0.0.9"), std::string::npos) << "limit respected";

  const std::string full = t.to_text("demo");
  EXPECT_NE(full.find("3.500"), std::string::npos)
      << "non-integral values keep decimals";
}

TEST(ResultTable, EmptyTableRenders) {
  const ResultTable t(demo_schema());
  const std::string text = t.to_text("empty");
  EXPECT_NE(text.find("srcip"), std::string::npos);
  EXPECT_EQ(t.row_count(), 0u);
}

}  // namespace
}  // namespace perfq::runtime
