// The unified engine surface: EngineBuilder (one construction path for the
// serial and sharded engines), the polymorphic runtime::Engine interface,
// and the pluggable StreamSink layer (default table sink semantics, user
// sink overflow, callback batch boundaries, ring sink, and sink equivalence
// across both engines over the Fig. 2 fold corpus).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/engine_builder.hpp"
#include "runtime/sharded/sharded_engine.hpp"
#include "runtime_test_util.hpp"
#include "trace/flow_session.hpp"

namespace perfq::runtime {
namespace {

std::vector<PacketRecord> workload() {
  return test_workload(/*seed=*/321, /*num_flows=*/200,
                       /*mean_flow_pkts=*/20.0, /*duration=*/5_s);
}

/// Small geometry so evictions happen; 64 buckets divide into 1/2/4/8 shards.
kv::CacheGeometry small_geometry() {
  return kv::CacheGeometry::set_associative(64, 8);
}

// ---- builder ----------------------------------------------------------------

TEST(EngineBuilder, BuildsSerialEngineByDefaultAndShardedOnRequest) {
  auto serial = EngineBuilder(compiler::compile_source("SELECT COUNT GROUPBY srcip"))
                    .geometry(small_geometry())
                    .build();
  EXPECT_NE(dynamic_cast<QueryEngine*>(serial.get()), nullptr);

  auto sharded = EngineBuilder(compiler::compile_source("SELECT COUNT GROUPBY srcip"))
                     .geometry(small_geometry())
                     .sharded(4)
                     .dispatchers(2)
                     .build();
  auto* concrete = dynamic_cast<ShardedEngine*>(sharded.get());
  ASSERT_NE(concrete, nullptr);
  EXPECT_EQ(concrete->num_shards(), 4u);
  EXPECT_EQ(concrete->num_dispatchers(), 2u);
  // Tear the sharded pipeline down cleanly without a finish().
}

TEST(EngineBuilder, SerialAndShardedAgreeThroughTheInterface) {
  const auto records = workload();
  const char* source = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

R1 = SELECT 5tuple, COUNT, ewma GROUPBY 5tuple
)";
  const std::map<std::string, double> params{{"alpha", 0.125}};

  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(EngineBuilder(compiler::compile_source(source, params))
                        .geometry(small_geometry())
                        .build());
  engines.push_back(EngineBuilder(compiler::compile_source(source, params))
                        .geometry(small_geometry())
                        .sharded(4)
                        .build());
  engines.push_back(EngineBuilder(compiler::compile_source(source, params))
                        .geometry(small_geometry())
                        .sharded(2)
                        .dispatchers(2)
                        .build());
  for (auto& engine : engines) {
    engine->process_batch(records);
    engine->finish(6_s);
    EXPECT_EQ(engine->records_processed(), records.size());
  }
  for (std::size_t i = 1; i < engines.size(); ++i) {
    expect_tables_bit_identical(engines[0]->result(), engines[i]->result(),
                                "engine " + std::to_string(i));
  }
}

TEST(EngineBuilder, KnobsReachTheEngine) {
  const auto records = workload();
  auto engine =
      EngineBuilder(compiler::compile_source("R1 = SELECT COUNT GROUPBY srcip"))
          .geometry(small_geometry())
          .query_geometry("R1", kv::CacheGeometry::set_associative(16, 2))
          .refresh(500_ms)
          .build();
  engine->process_batch(records);
  EXPECT_GT(engine->refresh_count(), 0u);
  engine->finish(6_s);
  const auto stats = engine->store_stats();
  ASSERT_EQ(stats.size(), 1u);
  // The 32-slot per-query override must thrash (200 flows), proving the
  // override took precedence over the 512-slot default.
  EXPECT_GT(stats[0].cache.evictions, 0u);
}

TEST(EngineBuilder, RejectsShardedKnobsWithoutSharded) {
  const auto build_with = [](auto&& apply) {
    EngineBuilder builder(compiler::compile_source("SELECT COUNT GROUPBY srcip"));
    apply(builder);
    return builder.build();
  };
  EXPECT_THROW(build_with([](EngineBuilder& b) { b.dispatchers(2); }),
               ConfigError);
  EXPECT_THROW(build_with([](EngineBuilder& b) { b.ring_capacity(64); }),
               ConfigError);
  EXPECT_THROW(build_with([](EngineBuilder& b) { b.dispatch_batch(8); }),
               ConfigError);
  EXPECT_THROW(build_with([](EngineBuilder& b) { b.backing_shards(2); }),
               ConfigError);
  EXPECT_THROW(build_with([](EngineBuilder& b) { b.eviction_batch(8); }),
               ConfigError);
  // And the engine-level validation still fires through the builder.
  EXPECT_THROW(
      build_with([](EngineBuilder& b) { b.sharded(2).dispatchers(0); }),
      ConfigError);
}

TEST(EngineBuilder, BuildTwiceThrows) {
  EngineBuilder builder(compiler::compile_source("SELECT COUNT GROUPBY srcip"));
  auto engine = builder.build();
  ASSERT_NE(engine, nullptr);
  EXPECT_THROW((void)builder.build(), ConfigError);
}

TEST(EngineBuilder, RejectsUnknownStreamSinkNames) {
  // No stream query named S in the program.
  EXPECT_THROW((void)EngineBuilder(
                   compiler::compile_source("SELECT COUNT GROUPBY srcip"))
                   .stream_sink("S", std::make_shared<TableStreamSink>())
                   .build(),
               ConfigError);
  // A GROUPBY name is not a stream SELECT either.
  EXPECT_THROW((void)EngineBuilder(compiler::compile_source(
                   "R1 = SELECT COUNT GROUPBY srcip"))
                   .stream_sink("R1", std::make_shared<TableStreamSink>())
                   .build(),
               ConfigError);
  // Same validation on the sharded path.
  EXPECT_THROW((void)EngineBuilder(compiler::compile_source(
                   "SELECT COUNT GROUPBY srcip"))
                   .sharded(2)
                   .stream_sink("S", std::make_shared<TableStreamSink>())
                   .build(),
               ConfigError);
}

// ---- stream sinks -----------------------------------------------------------

/// A program with one stream SELECT (named S) and one GROUPBY (named R1, the
/// primary result), sharing the Fig. 2 fold definitions.
struct SinkCase {
  const char* name;
  const char* source;
};
const SinkCase kSinkCorpus[] = {
    {"counter", R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

S = SELECT srcip, pkt_len FROM T WHERE pkt_len > 300
R1 = SELECT 5tuple, counter GROUPBY 5tuple
)"},
    {"ewma", R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

S = SELECT srcip, dstip, tout - tin FROM T WHERE tout != infinity
R1 = SELECT 5tuple, ewma GROUPBY 5tuple
)"},
    {"outofseq", R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

S = SELECT srcip, tcpseq FROM T WHERE proto == TCP
R1 = SELECT 5tuple, outofseq GROUPBY 5tuple
)"},
    {"nonmt", R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

S = SELECT qid, qin FROM T WHERE qin > 3
R1 = SELECT 5tuple, nonmt GROUPBY 5tuple
)"},
};
const std::map<std::string, double> kSinkParams{{"alpha", 0.125}};

std::unique_ptr<Engine> build_case(const SinkCase& entry, bool sharded,
                                   std::shared_ptr<StreamSink> sink,
                                   std::size_t max_stream_rows = 1'000'000) {
  EngineBuilder builder(compiler::compile_source(entry.source, kSinkParams));
  builder.geometry(small_geometry()).max_stream_rows(max_stream_rows);
  if (sink != nullptr) builder.stream_sink("S", std::move(sink));
  if (sharded) builder.sharded(4).dispatchers(2);
  return builder.build();
}

TEST(StreamSinks, DefaultSinkOverflowTruncatesAndPreservesPrefix) {
  const auto records = workload();
  for (const bool sharded : {false, true}) {
    // Unlimited reference first: the full row stream.
    auto full = build_case(kSinkCorpus[0], sharded, nullptr);
    full->process_batch(records);
    full->finish(6_s);
    const ResultTable& all_rows = full->table("S");
    ASSERT_GT(all_rows.row_count(), 32u) << "workload too small to overflow";

    // Capped default sink: exactly max_stream_rows rows, the prefix.
    auto capped = build_case(kSinkCorpus[0], sharded, nullptr,
                             /*max_stream_rows=*/32);
    capped->process_batch(records);
    capped->finish(6_s);
    const ResultTable& capped_rows = capped->table("S");
    ASSERT_EQ(capped_rows.row_count(), 32u);
    for (std::size_t r = 0; r < 32; ++r) {
      EXPECT_EQ(capped_rows.rows()[r], all_rows.rows()[r]) << "row " << r;
    }
  }
}

TEST(StreamSinks, UserTableSinkReportsOverflow) {
  const auto records = workload();
  for (const bool sharded : {false, true}) {
    auto sink = std::make_shared<TableStreamSink>(/*max_rows=*/32);
    auto engine = build_case(kSinkCorpus[0], sharded, sink);
    engine->process_batch(records);
    engine->finish(6_s);
    EXPECT_TRUE(sink->overflowed());
    EXPECT_EQ(sink->table().row_count(), 32u);
    // A table-buffering user sink is materialized like the default one.
    expect_tables_bit_identical(sink->table(), engine->table("S"),
                                "user table sink");
  }
}

TEST(StreamSinks, CallbackSinkSeesOneBatchPerProcessBatchCall) {
  const auto records = workload();
  ASSERT_GT(records.size(), 500u);
  for (const bool sharded : {false, true}) {
    const std::string context = sharded ? "sharded" : "serial";
    std::vector<std::size_t> batch_sizes;
    std::vector<std::vector<double>> rows;
    std::size_t finishes = 0;
    auto sink = std::make_shared<CallbackStreamSink>(
        [&](const StreamBatch& batch) {
          EXPECT_EQ(batch.query, "S");
          ASSERT_NE(batch.schema, nullptr);
          EXPECT_FALSE(batch.rows.empty());
          batch_sizes.push_back(batch.rows.size());
          for (const auto& row : batch.rows) rows.push_back(row);
        },
        [&] { ++finishes; });
    auto engine = build_case(kSinkCorpus[0], sharded, sink);

    // Ragged delivery: every process_batch call with >= 1 matching row must
    // produce exactly one callback batch carrying those rows.
    const std::span<const PacketRecord> span(records);
    std::size_t expected_batches = 0;
    std::vector<std::size_t> expected_sizes;
    std::size_t base = 0;
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, span.size() - 72}) {
      std::size_t matching = 0;
      for (std::size_t i = base; i < base + n; ++i) {
        if (span[i].pkt.pkt_len > 300) ++matching;
      }
      engine->process_batch(span.subspan(base, n));
      base += n;
      if (matching > 0) {
        ++expected_batches;
        expected_sizes.push_back(matching);
      }
    }
    ASSERT_EQ(base, span.size());
    EXPECT_EQ(batch_sizes, expected_sizes) << context;
    EXPECT_EQ(batch_sizes.size(), expected_batches) << context;

    EXPECT_EQ(finishes, 0u);
    engine->finish(6_s);
    EXPECT_EQ(finishes, 1u) << context;

    // Row content: exactly the matching records, in record order.
    std::vector<std::vector<double>> expected_rows;
    for (const auto& rec : records) {
      if (rec.pkt.pkt_len > 300) {
        expected_rows.push_back(
            {static_cast<double>(rec.pkt.flow.src_ip),
             static_cast<double>(rec.pkt.pkt_len)});
      }
    }
    EXPECT_EQ(rows, expected_rows) << context;

    // Pass-through sinks do not materialize a table for the stream query.
    EXPECT_THROW((void)engine->table("S"), QueryError) << context;
    // ...but the rest of the program is unaffected.
    EXPECT_NO_THROW((void)engine->table("R1")) << context;
  }
}

TEST(StreamSinks, SinkEquivalenceAcrossCorpusAndEngines) {
  // Table sink (default), user table sink, and callback sink must observe
  // the exact same row stream — and serial/sharded engines must agree —
  // across the Fig. 2 fold corpus.
  const auto records = workload();
  for (const SinkCase& entry : kSinkCorpus) {
    std::vector<std::vector<double>> reference_rows;  // from serial default
    for (const bool sharded : {false, true}) {
      const std::string context =
          std::string(entry.name) + (sharded ? "/sharded" : "/serial");

      auto with_default = build_case(entry, sharded, nullptr);
      auto table_sink = std::make_shared<TableStreamSink>();
      auto with_table = build_case(entry, sharded, table_sink);
      std::vector<std::vector<double>> callback_rows;
      auto with_callback = build_case(
          entry, sharded,
          std::make_shared<CallbackStreamSink>([&](const StreamBatch& batch) {
            for (const auto& row : batch.rows) callback_rows.push_back(row);
          }));

      for (Engine* engine :
           {with_default.get(), with_table.get(), with_callback.get()}) {
        engine->process_batch(records);
        engine->finish(6_s);
      }

      const ResultTable& default_rows = with_default->table("S");
      expect_tables_bit_identical(default_rows, table_sink->table(), context);
      ASSERT_EQ(callback_rows.size(), default_rows.row_count()) << context;
      for (std::size_t r = 0; r < callback_rows.size(); ++r) {
        EXPECT_EQ(callback_rows[r], default_rows.rows()[r])
            << context << " row " << r;
      }
      // The engines also agree between themselves.
      if (reference_rows.empty()) {
        reference_rows = callback_rows;
      } else {
        EXPECT_EQ(callback_rows, reference_rows) << context;
      }
      // And the stream machinery never perturbs the aggregate path.
      expect_tables_bit_identical(with_default->table("R1"),
                                  with_table->table("R1"), context);
    }
  }
}

TEST(StreamSinks, RingSinkKeepsNewestRowsAndCounts) {
  const auto records = workload();
  auto ring = std::make_shared<RingStreamSink>(/*capacity=*/64);
  auto engine = build_case(kSinkCorpus[0], /*sharded=*/false, ring);

  // Mid-run drain: the monitoring pull on streams.
  const std::span<const PacketRecord> span(records);
  engine->process_batch(span.first(span.size() / 2));
  std::vector<std::vector<double>> drained;
  const std::size_t mid_drained = ring->drain(drained);
  EXPECT_LE(mid_drained, 64u);
  EXPECT_GT(mid_drained, 0u);

  engine->process_batch(span.subspan(span.size() / 2));
  engine->finish(6_s);

  // Compute the full matching stream; the ring must hold its tail.
  std::vector<std::vector<double>> expected;
  for (const auto& rec : records) {
    if (rec.pkt.pkt_len > 300) {
      expected.push_back({static_cast<double>(rec.pkt.flow.src_ip),
                          static_cast<double>(rec.pkt.pkt_len)});
    }
  }
  ring->drain(drained);
  ASSERT_LE(drained.size(), 64u);
  const std::size_t tail = drained.size();
  for (std::size_t r = 0; r < tail; ++r) {
    EXPECT_EQ(drained[r], expected[expected.size() - tail + r]) << "row " << r;
  }
  // Everything that flowed through and did not fit was counted as dropped
  // (rows drained mid-run were not "dropped").
  EXPECT_EQ(mid_drained + ring->dropped() + tail, expected.size());
}

}  // namespace
}  // namespace perfq::runtime
