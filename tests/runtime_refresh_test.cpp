// Periodic backing-store refresh (§3.2: "keys can be periodically evicted to
// ensure the backing store is fresh"). The strong property: because the
// merge is exact, refreshing at ANY interval must not change the results of
// linear queries — only non-linear queries pay (more segments => lower
// accuracy), which is exactly the paper's framing.
#include <gtest/gtest.h>

#include "runtime/engine.hpp"
#include "trace/flow_session.hpp"

namespace perfq::runtime {
namespace {

using compiler::compile_source;

std::vector<PacketRecord> workload() {
  trace::TraceConfig c;
  c.seed = 77;
  c.duration = 20_s;
  c.num_flows = 500;
  c.mean_flow_pkts = 30.0;
  return trace::generate_all(c);
}

EngineConfig config_with_refresh(Nanos interval) {
  EngineConfig config;
  config.geometry = kv::CacheGeometry::set_associative(64, 8);
  config.refresh_interval = interval;
  return config;
}

constexpr const char* kLinearQuery = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, COUNT, SUM(pkt_len), ewma GROUPBY 5tuple WHERE tout != infinity
)";

TEST(Refresh, LinearResultsIdenticalAtAnyInterval) {
  const auto records = workload();
  std::vector<std::vector<std::vector<double>>> all_rows;
  for (const Nanos interval : {0_s, 5_s, 1_s, 100_ms}) {
    QueryEngine engine(compile_source(kLinearQuery, {{"alpha", 0.125}}),
                       config_with_refresh(interval));
    for (const auto& rec : records) engine.process(rec);
    engine.finish(25_s);
    if (interval > 0_ns) {
      EXPECT_GT(engine.refresh_count(), 0u);
    }
    auto rows = engine.result().rows();
    std::sort(rows.begin(), rows.end());
    all_rows.push_back(std::move(rows));
  }
  for (std::size_t i = 1; i < all_rows.size(); ++i) {
    ASSERT_EQ(all_rows[i].size(), all_rows[0].size());
    for (std::size_t r = 0; r < all_rows[0].size(); ++r) {
      ASSERT_EQ(all_rows[i][r].size(), all_rows[0][r].size());
      for (std::size_t c = 0; c < all_rows[0][r].size(); ++c) {
        EXPECT_NEAR(all_rows[i][r][c], all_rows[0][r][c],
                    1e-9 * std::max(1.0, std::abs(all_rows[0][r][c])))
            << "interval run " << i << " row " << r << " col " << c;
      }
    }
  }
}

TEST(Refresh, CountsAreUntouchedByAggressiveRefresh) {
  const auto records = workload();
  QueryEngine base(compile_source("SELECT COUNT GROUPBY srcip"),
                   config_with_refresh(0_s));
  QueryEngine refreshed(compile_source("SELECT COUNT GROUPBY srcip"),
                        config_with_refresh(10_ms));
  for (const auto& rec : records) {
    base.process(rec);
    refreshed.process(rec);
  }
  base.finish(25_s);
  refreshed.finish(25_s);
  EXPECT_GT(refreshed.refresh_count(), 100u);

  auto a = base.result().rows();
  auto b = refreshed.result().rows();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Refresh, NonLinearAccuracyDegradesWithRefreshRate) {
  const char* query = R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP
)";
  const auto records = workload();
  double prev_accuracy = -1.0;
  for (const Nanos interval : {1_s, 5_s, 0_s}) {  // aggressive -> none
    QueryEngine engine(compile_source(query), config_with_refresh(interval));
    for (const auto& rec : records) engine.process(rec);
    engine.finish(25_s);
    const double acc = engine.store_stats()[0].accuracy.accuracy();
    EXPECT_GE(acc, prev_accuracy)
        << "less frequent refresh must not lower non-linear validity";
    prev_accuracy = acc;
  }
}

TEST(Refresh, BackingStoreIsFreshMidRun) {
  // The whole point of refreshing: mid-run reads from the backing store see
  // (nearly) all packets, not just evicted epochs.
  const auto records = workload();
  QueryEngine engine(compile_source("R1 = SELECT COUNT GROUPBY srcip"),
                     config_with_refresh(500_ms));
  std::uint64_t processed = 0;
  for (const auto& rec : records) {
    engine.process(rec);
    ++processed;
    if (processed == records.size() / 2) break;
  }
  // Sum of counts in the backing store vs. packets processed so far: with
  // 500 ms refresh on a 20 s trace the store lags by at most one interval.
  double total = 0;
  engine.store("R1").backing().for_each(
      [&](const kv::Key&, const kv::StateVector& v, bool) { total += v[0]; });
  EXPECT_GT(total, 0.8 * static_cast<double>(processed));
}

}  // namespace
}  // namespace perfq::runtime
