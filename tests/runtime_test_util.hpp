// Shared helpers for the runtime test suites (engine equivalence, sinks,
// snapshots): one definition of the bit-for-bit table comparison and the
// standard synthetic workload, so the suites cannot drift apart.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/table.hpp"
#include "trace/flow_session.hpp"

namespace perfq::runtime {

/// The equivalence workload: enough flows and packets that a small cache
/// thrashes (evictions + merges on every prefix), deterministic by seed.
inline std::vector<PacketRecord> test_workload(std::uint64_t seed = 77,
                                               std::uint32_t num_flows = 400,
                                               double mean_flow_pkts = 25.0,
                                               Nanos duration = 10_s) {
  trace::TraceConfig c;
  c.seed = seed;
  c.duration = duration;
  c.num_flows = num_flows;
  c.mean_flow_pkts = mean_flow_pkts;
  return trace::generate_all(c);
}

/// Exact double equality, cell by cell: the engines under comparison must
/// not differ in a single IEEE operation.
inline void expect_tables_bit_identical(const ResultTable& want,
                                        const ResultTable& got,
                                        const std::string& context) {
  ASSERT_EQ(got.row_count(), want.row_count()) << context;
  for (std::size_t r = 0; r < want.row_count(); ++r) {
    const auto& wrow = want.rows()[r];
    const auto& grow = got.rows()[r];
    ASSERT_EQ(grow.size(), wrow.size()) << context << " row " << r;
    for (std::size_t c = 0; c < wrow.size(); ++c) {
      EXPECT_EQ(grow[c], wrow[c]) << context << " row " << r << " col " << c;
    }
  }
}

}  // namespace perfq::runtime
