// Shared helpers for the runtime test suites (engine equivalence, sinks,
// snapshots): one definition of the bit-for-bit table comparison and the
// standard synthetic workload, so the suites cannot drift apart.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/table.hpp"
#include "trace/fabric_trace.hpp"
#include "trace/flow_session.hpp"

namespace perfq::runtime {

/// The equivalence workload: enough flows and packets that a small cache
/// thrashes (evictions + merges on every prefix), deterministic by seed.
inline std::vector<PacketRecord> test_workload(std::uint64_t seed = 77,
                                               std::uint32_t num_flows = 400,
                                               double mean_flow_pkts = 25.0,
                                               Nanos duration = 10_s) {
  trace::TraceConfig c;
  c.seed = seed;
  c.duration = duration;
  c.num_flows = num_flows;
  c.mean_flow_pkts = mean_flow_pkts;
  return trace::generate_all(c);
}

/// The fabric equivalence workload: a leaf-spine network with a heavy-tailed
/// flow mix, bursty arrivals, one incast and one hotspot episode —
/// test-sized (the netsim/federation/codegen suites share it; scale
/// num_flows up for fabric-sized runs). Deterministic by seed.
inline trace::FabricTraceConfig fabric_test_config(std::uint64_t seed = 77,
                                                   std::uint32_t leaves = 2,
                                                   std::uint32_t spines = 2) {
  trace::FabricTraceConfig c;
  c.seed = seed;
  c.leaves = leaves;
  c.spines = spines;
  c.hosts_per_leaf = 4;
  c.duration = Nanos{2'000'000};
  c.num_flows = 160;
  c.mean_flow_pkts = 10.0;
  c.tcp_fraction = 0.5;
  c.burst_period = Nanos{250'000};
  c.burst_on = 0.25;
  c.edge.queue_capacity_pkts = 24;  // small queues: real drops to localize
  c.fabric_links.queue_capacity_pkts = 24;
  c.incasts.push_back(trace::FabricIncast{8, 0, 0, Nanos{500'000}, 48, 1500});
  c.hotspots.push_back(
      trace::FabricHotspot{0, leaves - 1, Nanos{1'000'000}, Nanos{400'000}, 1.5});
  return c;
}

/// Build the topology and install the flows of `config` in one step.
inline net::LeafSpine build_test_fabric(net::Network& net,
                                        const trace::FabricTraceConfig& config) {
  net::LeafSpine fabric = trace::build_fabric(net, config);
  trace::install_fabric_flows(net, fabric, config);
  return fabric;
}

/// Exact double equality, cell by cell: the engines under comparison must
/// not differ in a single IEEE operation.
inline void expect_tables_bit_identical(const ResultTable& want,
                                        const ResultTable& got,
                                        const std::string& context) {
  ASSERT_EQ(got.row_count(), want.row_count()) << context;
  for (std::size_t r = 0; r < want.row_count(); ++r) {
    const auto& wrow = want.rows()[r];
    const auto& grow = got.rows()[r];
    ASSERT_EQ(grow.size(), wrow.size()) << context << " row " << r;
    for (std::size_t c = 0; c < wrow.size(); ++c) {
      EXPECT_EQ(grow[c], wrow[c]) << context << " row " << r << " col " << c;
    }
  }
}

}  // namespace perfq::runtime
