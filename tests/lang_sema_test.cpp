// Semantic analysis tests: schemas, aggregation classification, join
// legality, and the linear-in-state analyzer reproducing Fig. 2's column.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "lang/sema.hpp"

namespace perfq::lang {
namespace {

using kv::Linearity;

// ------------------------------------------------------------- linearity --

AnalyzedProgram analyze_fold(const std::string& source,
                             const std::map<std::string, double>& params = {}) {
  return analyze_source(source, params);
}
#define LINEARITY_OF(prog) (prog).folds.at(0).linearity

TEST(Linearity, EwmaIsLinearConstA) {
  const auto prog = analyze_fold(R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)",
                              {{"alpha", 0.125}});
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kLinearConstA);
  EXPECT_EQ(r.history_window, 0u);
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_NE(r.rows[0].coeffs[0], nullptr);
  EXPECT_DOUBLE_EQ(r.rows[0].coeffs[0]->number, 0.875);
  EXPECT_EQ(to_string(*r.rows[0].constant), "(tout + -tin) * 0.125");
}

TEST(Linearity, SumLenIsLinearConstA) {
  const auto prog = analyze_fold(R"(
def sumlen (result, (pkt_len)): result = result + pkt_len

SELECT srcip, dstip, sumlen GROUPBY srcip, dstip
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kLinearConstA);
  EXPECT_EQ(r.history_window, 0u);
}

TEST(Linearity, OutOfSeqIsLinearWithHistoryOne) {
  // Fig. 2 classifies TCP out-of-sequence as linear in state; the analyzer
  // must discover that `lastseq` is a one-packet history variable.
  const auto prog = analyze_fold(R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_TRUE(r.linear()) << r.reason;
  EXPECT_EQ(r.history_window, 1u);
  EXPECT_EQ(r.classification, Linearity::kLinearConstA);  // A == I here
}

TEST(Linearity, NonMonotonicIsNotLinear) {
  // The single "No" row of Fig. 2.
  const auto prog = analyze_fold(R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kNotLinear);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Linearity, PercentileIsLinearConstA) {
  const auto prog = analyze_fold(R"(
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

SELECT qid, perc GROUPBY qid
)",
                              {{"K", 100.0}});
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kLinearConstA);
  EXPECT_EQ(r.history_window, 0u);
}

TEST(Linearity, SumLatIsLinearConstA) {
  const auto prog = analyze_fold(R"(
def sum_lat (lat, (tin, tout)): lat = lat + tout - tin

SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kLinearConstA);
}

TEST(Linearity, PacketScaledStateIsLinearNotConstA) {
  // A depends on the packet => merge needs the running product, not A^N.
  const auto prog = analyze_fold(R"(
def weird (acc, (pkt_len)):
    acc = pkt_len * acc + 1

SELECT 5tuple, weird GROUPBY 5tuple
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kLinear);
}

TEST(Linearity, StateTimesStateIsNotLinear) {
  const auto prog = analyze_fold(R"(
def sq ((a, b), (pkt_len)):
    a = a * b + pkt_len

SELECT 5tuple, sq GROUPBY 5tuple
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kNotLinear);
  EXPECT_NE(r.reason.find("product"), std::string::npos);
}

TEST(Linearity, DivisionByStateIsNotLinear) {
  const auto prog = analyze_fold(R"(
def ratio (a, (pkt_len)):
    a = pkt_len / a

SELECT 5tuple, ratio GROUPBY 5tuple
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kNotLinear);
}

TEST(Linearity, PacketPurePredicateKeepsLinearity) {
  const auto prog = analyze_fold(R"(
def sel (acc, (pkt_len, qsize)):
    if pkt_len > 1000 and qsize > 10:
        acc = acc + pkt_len
    else:
        acc = acc + 1

SELECT 5tuple, sel GROUPBY 5tuple
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kLinearConstA);
}

TEST(Linearity, BranchAssigningDifferentCoefficientsStaysLinear) {
  const auto prog = analyze_fold(R"(
def gear (acc, (pkt_len)):
    if pkt_len > 500:
        acc = 2 * acc
    else:
        acc = acc + 1

SELECT 5tuple, gear GROUPBY 5tuple
)");
  const auto& r = LINEARITY_OF(prog);
  // Coefficient is __select(pkt_len > 500, 2, 1): packet-dependent A.
  EXPECT_EQ(r.classification, Linearity::kLinear);
  EXPECT_EQ(r.history_window, 0u);
}

TEST(Linearity, TwoPacketHistoryChainIsRejected) {
  // prev2 copies prev1 (a history var of order 1), so prev2 has order 2; the
  // analyzer supports h <= 1 and must fall back to not-linear, never to a
  // wrong merge.
  const auto prog = analyze_fold(R"(
def chain ((prev1, prev2, acc), (tcpseq)):
    if prev2 > tcpseq: acc = acc + 1
    prev2 = prev1
    prev1 = tcpseq

SELECT 5tuple, chain GROUPBY 5tuple
)");
  const auto& r = LINEARITY_OF(prog);
  EXPECT_EQ(r.classification, Linearity::kNotLinear);
}

// ----------------------------------------------------------------- sema ----

TEST(Sema, BaseSchemaHasAllPaperFields) {
  const Schema base = Schema::base();
  for (const char* name : {"srcip", "dstip", "srcport", "dstport", "proto",
                           "pkt_len", "tcpseq", "pkt_uniq", "pkt_path", "qid",
                           "tin", "tout", "qsize"}) {
    EXPECT_NE(base.find(name), nullptr) << name;
  }
  EXPECT_NE(base.find("qin"), nullptr) << "Fig. 2 uses qin for queue size";
}

TEST(Sema, GroupByProducesKeyedSchema) {
  const auto p = analyze_source("SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip");
  const AnalyzedQuery& q = p.queries.at(0);
  EXPECT_TRUE(q.on_switch);
  ASSERT_EQ(q.key_columns.size(), 2u);
  EXPECT_EQ(q.output.key, q.key_columns);
  EXPECT_NE(q.output.find("COUNT"), nullptr);
  EXPECT_NE(q.output.find("SUM(pkt_len)"), nullptr);
  ASSERT_EQ(q.aggregations.size(), 2u);
  EXPECT_EQ(q.aggregations[0].kind, AggregationSpec::Kind::kCount);
  EXPECT_EQ(q.aggregations[1].kind, AggregationSpec::Kind::kSum);
}

TEST(Sema, FiveTupleExpandsToFiveKeyColumns) {
  const auto p = analyze_source("SELECT COUNT GROUPBY 5tuple");
  EXPECT_EQ(p.queries.at(0).key_columns.size(), 5u);
}

TEST(Sema, FoldColumnsNamedByStateVarsWithAliases) {
  const auto p = analyze_source(R"(
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

R1 = SELECT qid, perc GROUPBY qid
R2 = SELECT * FROM R1 WHERE perc.high / perc.tot > 0.01
)",
                                {{"K", 100.0}});
  const Schema& r1 = p.queries.at(0).output;
  EXPECT_NE(r1.find("tot"), nullptr);
  EXPECT_NE(r1.find("perc.high"), nullptr) << "dotted alias must resolve";
  // R2's WHERE referenced the dotted names: analysis must have accepted it.
  EXPECT_EQ(p.queries.at(1).projections.size(), r1.size());
}

TEST(Sema, DownstreamQueryReadsUpstreamColumns) {
  const auto p = analyze_source(R"(
def sum_lat (lat, (tin, tout)): lat = lat + tout - tin

R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq
R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE lat > 10ms
)");
  const AnalyzedQuery& r2 = p.queries.at(1);
  EXPECT_EQ(r2.input, 0);
  EXPECT_FALSE(r2.on_switch) << "aggregating an aggregate runs off-switch";
  EXPECT_EQ(r2.key_columns.size(), 5u);
}

TEST(Sema, JoinRequiresKeysOfBothSides) {
  const auto p = analyze_source(R"(
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON 5tuple
)");
  const AnalyzedQuery& r3 = p.queries.at(2);
  EXPECT_EQ(r3.def.kind, QueryDef::Kind::kJoin);
  EXPECT_EQ(r3.key_columns.size(), 5u);
  EXPECT_NE(r3.output.find("R2.COUNT / R1.COUNT"), nullptr);
}

TEST(Sema, JoinOnMismatchedKeysRejected) {
  EXPECT_THROW((void)analyze_source(R"(
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY srcip
R3 = SELECT R1.COUNT FROM R1 JOIN R2 ON srcip
)"),
               QueryError);
}

TEST(Sema, JoinOverRawTableRejected) {
  // §2: T JOIN T ON pkt_5tuple is inherently expensive and excluded.
  EXPECT_THROW((void)analyze_source(R"(
R1 = SELECT R1.COUNT FROM T JOIN T ON 5tuple
)"),
               QueryError);
}

TEST(Sema, UnknownColumnRejected) {
  EXPECT_THROW((void)analyze_source("SELECT nonexistent FROM T"), QueryError);
}

TEST(Sema, UnknownTableRejected) {
  EXPECT_THROW((void)analyze_source("SELECT srcip FROM Nope"), QueryError);
}

TEST(Sema, MissingConstantRejected) {
  EXPECT_THROW((void)analyze_source(R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)"),
               QueryError);  // alpha not provided
}

TEST(Sema, AssignToNonStateVarRejected) {
  EXPECT_THROW((void)analyze_source(R"(
def bad (acc, (pkt_len)):
    pkt_len = acc

SELECT 5tuple, bad GROUPBY 5tuple
)"),
               QueryError);
}

TEST(Sema, KeyOnlyGroupByGetsImplicitCount) {
  const auto p = analyze_source("SELECT srcip GROUPBY srcip");
  const AnalyzedQuery& q = p.queries.at(0);
  ASSERT_EQ(q.aggregations.size(), 1u);
  EXPECT_EQ(q.aggregations[0].kind, AggregationSpec::Kind::kCount);
}

TEST(Sema, WhereWithDroppedPacketsPredicate) {
  const auto p =
      analyze_source("SELECT COUNT GROUPBY 5tuple WHERE tout == infinity");
  ASSERT_NE(p.queries.at(0).def.where, nullptr);
}

TEST(Sema, SelectPreservesKeyWhenProjectionKeepsIt) {
  const auto p = analyze_source(R"(
R1 = SELECT COUNT GROUPBY srcip
R2 = SELECT srcip, COUNT FROM R1 WHERE COUNT > 5
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON srcip
)");
  EXPECT_EQ(p.queries.at(1).output.key, std::vector<std::string>{"srcip"});
}

TEST(Sema, DuplicateTableNameRejected) {
  EXPECT_THROW((void)analyze_source(R"(
R1 = SELECT COUNT GROUPBY srcip
R1 = SELECT COUNT GROUPBY dstip
)"),
               QueryError);
}

TEST(Sema, ComputedGroupByKeyOverStreamAccepted) {
  // An expression GROUPBY key over the packet stream becomes a computed key
  // column named by the expression's canonical rendering, with a fresh
  // 64-bit schema column; free constants fold into the key expression.
  const auto p = analyze_source("SELECT COUNT GROUPBY srcip, pkt_len / B",
                                {{"B", 256.0}});
  const AnalyzedQuery& q = p.queries.at(0);
  ASSERT_EQ(q.key_columns.size(), 2u);
  EXPECT_EQ(q.key_columns[0], "srcip");
  EXPECT_EQ(q.key_columns[1], "pkt_len / 256");
  ASSERT_EQ(q.computed_keys.size(), 1u);
  ASSERT_TRUE(q.computed_keys.count("pkt_len / 256") > 0);
  EXPECT_TRUE(q.on_switch);
  const Column* c = q.output.find("pkt_len / 256");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->bits, 64);
}

TEST(Sema, ComputedGroupByKeyOverAggregateRejected) {
  // Soft GROUPBYs resolve keys by column name against materialized tables.
  EXPECT_THROW((void)analyze_source(R"(
R1 = SELECT 5tuple, COUNT GROUPBY 5tuple
R2 = SELECT COUNT FROM R1 GROUPBY srcip / 256
)"),
               QueryError);
}

TEST(Sema, ComputedGroupByKeyWithUnknownColumnRejected) {
  EXPECT_THROW((void)analyze_source("SELECT COUNT GROUPBY mystery / 2"),
               QueryError);
}

}  // namespace
}  // namespace perfq::lang
