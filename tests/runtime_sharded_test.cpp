// Shard equivalence: the sharded multi-core runtime must reproduce the
// single-threaded QueryEngine exactly.
//
// The strong property (and why it holds): shard s's cache is precisely the
// bucket slice [s·n/N, (s+1)·n/N) of the configured n-bucket cache — same
// bucket contents, same LRU order, same capacity evictions, same in-band
// flush times — so for linear kernels the per-key epoch sequence absorbed by
// the backing store is identical and the exact merge gives BIT-IDENTICAL
// results (exact double equality, no tolerance), and for non-linear kernels
// the per-key value-segment sets and AccuracyStats are identical too.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/sharded/sharded_engine.hpp"
#include "runtime_test_util.hpp"
#include "trace/flow_session.hpp"
#include "trace/replay.hpp"

namespace perfq::runtime {
namespace {

std::vector<PacketRecord> workload() { return test_workload(); }

/// The Fig. 2 query corpus (same fold definitions the VM property test
/// uses), spanning const-A, varying-A, h=1 linear, and non-linear kernels.
struct CorpusEntry {
  const char* name;
  const char* source;
  bool linear;
};
const CorpusEntry kFig2Corpus[] = {
    {"counter", R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

SELECT 5tuple, counter GROUPBY 5tuple
)",
     true},
    {"bytecounter", R"(
def bytecounter ((cnt, bytes), (pkt_len)):
    cnt = cnt + 1
    bytes = bytes + pkt_len

SELECT 5tuple, bytecounter GROUPBY 5tuple
)",
     true},
    {"ewma", R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)",
     true},
    {"outofseq", R"(
def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple
)",
     true},
    {"nonmt", R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple
)",
     false},
    {"perc", R"(
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

SELECT qid, perc GROUPBY qid
)",
     true},
    {"sum_lat", R"(
def sum_lat (lat, (tin, tout)):
    lat = lat + (tout - tin)

SELECT 5tuple, sum_lat GROUPBY 5tuple
)",
     true},
    {"gear", R"(
def gear (acc, (pkt_len)):
    if pkt_len > 500:
        acc = 2 * acc
    else:
        acc = acc + 1

SELECT 5tuple, gear GROUPBY 5tuple
)",
     true},
};

const std::map<std::string, double> kParams = {{"alpha", 0.125}, {"K", 50}};

/// Small cache (8 buckets x 8 ways) so capacity evictions and merges are
/// exercised heavily; 8 buckets divide evenly into 1, 2 and 8 shards.
EngineConfig engine_config(Nanos refresh) {
  EngineConfig config;
  config.geometry = kv::CacheGeometry::set_associative(64, 8);
  config.refresh_interval = refresh;
  return config;
}

ShardedEngineConfig sharded_config(std::size_t shards, Nanos refresh,
                                   std::size_t dispatchers = 1) {
  ShardedEngineConfig config;
  config.engine = engine_config(refresh);
  config.num_shards = shards;
  config.num_dispatchers = dispatchers;
  config.ring_capacity = 512;
  config.dispatch_batch = 64;
  return config;
}

void run_equivalence(const CorpusEntry& entry, std::size_t shards,
                     Nanos refresh, std::size_t dispatchers = 1) {
  const std::string context = std::string(entry.name) + " shards=" +
                              std::to_string(shards) + " dispatchers=" +
                              std::to_string(dispatchers) +
                              " refresh=" + std::to_string(refresh.count());
  const auto records = workload();

  QueryEngine single(compiler::compile_source(entry.source, kParams),
                     engine_config(refresh));
  single.process_batch(records);
  single.finish(12_s);

  ShardedEngine sharded(compiler::compile_source(entry.source, kParams),
                        sharded_config(shards, refresh, dispatchers));
  trace::replay_into(sharded, records, /*batch=*/777);
  sharded.finish(12_s);

  EXPECT_EQ(sharded.records_processed(), single.records_processed());
  EXPECT_EQ(sharded.refresh_count(), single.refresh_count()) << context;
  expect_tables_bit_identical(single.result(), sharded.result(), context);

  // Aggregated cache/backing counters must match the single engine's.
  const auto ss = single.store_stats();
  const auto hs = sharded.store_stats();
  ASSERT_EQ(hs.size(), ss.size());
  for (std::size_t i = 0; i < ss.size(); ++i) {
    EXPECT_EQ(hs[i].cache.packets, ss[i].cache.packets) << context;
    EXPECT_EQ(hs[i].cache.hits, ss[i].cache.hits) << context;
    EXPECT_EQ(hs[i].cache.initializations, ss[i].cache.initializations)
        << context;
    EXPECT_EQ(hs[i].cache.evictions, ss[i].cache.evictions) << context;
    EXPECT_EQ(hs[i].cache.flushes, ss[i].cache.flushes) << context;
    EXPECT_EQ(hs[i].backing_writes, ss[i].backing_writes) << context;
    EXPECT_EQ(hs[i].backing_capacity_writes, ss[i].backing_capacity_writes)
        << context;
    EXPECT_EQ(hs[i].keys, ss[i].keys) << context;
    EXPECT_EQ(hs[i].accuracy.total_keys, ss[i].accuracy.total_keys) << context;
    EXPECT_EQ(hs[i].accuracy.valid_keys, ss[i].accuracy.valid_keys) << context;
  }

  // Non-linear kernels: the per-key value-segment sets must be identical
  // (same epoch boundaries, same per-epoch values, same validity).
  if (!entry.linear) {
    const auto& plan = single.program().switch_plans.at(0);
    const kv::KeyValueStore& sstore = single.store(plan.name);
    const kv::ShardedBackingStore& hstore = sharded.backing(plan.name);
    std::size_t keys = 0;
    sstore.backing().for_each([&](const kv::Key& key, const kv::StateVector&,
                                  bool) {
      ++keys;
      const auto* want = sstore.backing().segments(key);
      ASSERT_NE(want, nullptr);
      const auto got = hstore.segments(key);
      ASSERT_EQ(got.size(), want->size()) << context;
      for (std::size_t s = 0; s < want->size(); ++s) {
        EXPECT_EQ(got[s].start, (*want)[s].start) << context;
        EXPECT_EQ(got[s].end, (*want)[s].end) << context;
        EXPECT_EQ(got[s].packets, (*want)[s].packets) << context;
        EXPECT_TRUE(got[s].value == (*want)[s].value) << context;
      }
      EXPECT_EQ(hstore.valid(key), sstore.backing().valid(key)) << context;
    });
    EXPECT_GT(keys, 0u) << context;
  }
}

TEST(ShardedEngine, Fig2CorpusBitIdenticalAcrossShardCounts) {
  for (const auto& entry : kFig2Corpus) {
    for (const std::size_t shards : {1u, 2u, 8u}) {
      run_equivalence(entry, shards, /*refresh=*/0_s);
    }
  }
}

TEST(ShardedEngine, Fig2CorpusBitIdenticalWithPeriodicRefresh) {
  for (const auto& entry : kFig2Corpus) {
    for (const std::size_t shards : {2u, 8u}) {
      run_equivalence(entry, shards, /*refresh=*/1_s);
    }
  }
  // Aggressive refresh on a representative linear + the non-linear kernel.
  run_equivalence(kFig2Corpus[2], 8, /*refresh=*/100_ms);
  run_equivalence(kFig2Corpus[4], 8, /*refresh=*/100_ms);
}

TEST(ShardedEngine, MultiQueryProgramWithJoinAndStreamSink) {
  // Programs with several switch queries route each record per query key —
  // collection-layer JOINs and stream sinks must still match exactly.
  const char* source = R"(
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON 5tuple
)";
  const auto records = workload();
  QueryEngine single(compiler::compile_source(source), engine_config(0_s));
  single.process_batch(records);
  single.finish(12_s);

  ShardedEngine sharded(compiler::compile_source(source),
                        sharded_config(4, 0_s));
  sharded.process_batch(records);
  sharded.finish(12_s);

  for (const char* table : {"R1", "R2", "R3"}) {
    expect_tables_bit_identical(single.table(table), sharded.table(table),
                                table);
  }
}

TEST(ShardedEngine, ParallelDispatchBitIdenticalAcrossMatrix) {
  // The tentpole property: D co-dispatchers feeding N shards through the
  // D×N ring matrix, with the workers' sequence-ordered merge, must stay
  // bit-identical to the single-threaded engine for every (D, N) — the
  // merge reconstructs exactly the serial dispatch order per shard.
  for (const auto& entry : kFig2Corpus) {
    for (const std::size_t dispatchers : {2u, 4u}) {
      for (const std::size_t shards : {1u, 2u, 8u}) {
        run_equivalence(entry, shards, /*refresh=*/0_s, dispatchers);
      }
    }
  }
}

TEST(ShardedEngine, ParallelDispatchWithPeriodicRefresh) {
  // Refresh boundaries are detected by the caller's serial pre-scan and
  // broadcast by whichever dispatcher owns the slice they fall in; the
  // merge must execute them at exactly the single-threaded trace times.
  for (const std::size_t dispatchers : {2u, 4u}) {
    for (const std::size_t shards : {2u, 8u}) {
      run_equivalence(kFig2Corpus[2], shards, /*refresh=*/1_s, dispatchers);
      run_equivalence(kFig2Corpus[4], shards, /*refresh=*/1_s, dispatchers);
    }
  }
  // Aggressive refresh: many in-band flushes interleaved with records.
  run_equivalence(kFig2Corpus[0], 8, /*refresh=*/100_ms, 4);
}

TEST(ShardedEngine, ParallelDispatchSmallAndRaggedBatches) {
  // Batches smaller than D leave some dispatchers with empty slices; their
  // watermarks must still unblock the workers' merge.
  const auto records = workload();
  QueryEngine single(compiler::compile_source(kFig2Corpus[0].source, kParams),
                     engine_config(0_s));
  single.process_batch(records);
  single.finish(12_s);

  ShardedEngine sharded(compiler::compile_source(kFig2Corpus[0].source, kParams),
                        sharded_config(2, 0_s, 4));
  // Ragged delivery: 1-record batches, then 3, then one big tail.
  std::span<const PacketRecord> span(records);
  for (std::size_t i = 0; i < 10 && i < span.size(); ++i) {
    sharded.process_batch(span.subspan(i, 1));
  }
  std::size_t base = std::min<std::size_t>(10, span.size());
  while (base + 3 < span.size() && base < 40) {
    sharded.process_batch(span.subspan(base, 3));
    base += 3;
  }
  sharded.process_batch(span.subspan(base));
  sharded.finish(12_s);

  expect_tables_bit_identical(single.result(), sharded.result(),
                              "ragged batches");
}

TEST(ShardedEngine, RejectsGeometryNotDivisibleByShards) {
  ShardedEngineConfig config;
  config.engine.geometry = kv::CacheGeometry::fully_associative(64);  // n = 1
  config.num_shards = 2;
  EXPECT_THROW(ShardedEngine(compiler::compile_source(
                                 "SELECT COUNT GROUPBY srcip"),
                             config),
               ConfigError);
  // Also when only a per-query override is misaligned.
  ShardedEngineConfig per_query;
  per_query.num_shards = 8;
  per_query.engine.geometry = kv::CacheGeometry::set_associative(64, 8);
  per_query.engine.per_query_geometry["result"] =
      kv::CacheGeometry::set_associative(36, 9);  // 4 buckets, 8 shards
  EXPECT_THROW(ShardedEngine(compiler::compile_source(
                                 "SELECT COUNT GROUPBY srcip"),
                             per_query),
               ConfigError);
}

TEST(ShardedEngine, RejectsZeroShardsAndZeroDispatchers) {
  ShardedEngineConfig zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_THROW(ShardedEngine(compiler::compile_source(
                                 "SELECT COUNT GROUPBY srcip"),
                             zero_shards),
               ConfigError);
  ShardedEngineConfig zero_dispatchers;
  zero_dispatchers.num_dispatchers = 0;
  EXPECT_THROW(ShardedEngine(compiler::compile_source(
                                 "SELECT COUNT GROUPBY srcip"),
                             zero_dispatchers),
               ConfigError);
}

TEST(ShardedEngine, FinishTwiceAndProcessAfterFinishThrowCleanly) {
  const auto records = workload();
  ShardedEngine engine(compiler::compile_source("SELECT COUNT GROUPBY srcip"),
                       sharded_config(2, 0_s, 2));
  engine.process_batch(std::span<const PacketRecord>(records).first(100));
  engine.finish(12_s);
  EXPECT_NO_THROW((void)engine.result());
  EXPECT_THROW(engine.finish(12_s), Error);
  EXPECT_THROW(engine.process(records[0]), Error);
  EXPECT_THROW(engine.process_batch(std::span<const PacketRecord>(records)),
               Error);
  // The failed calls must not have corrupted the finished state.
  EXPECT_NO_THROW((void)engine.result());
  EXPECT_EQ(engine.records_processed(), 100u);
}

TEST(ShardedEngine, ComputedKeyProgramMatchesSingleEngine) {
  // Computed-key GROUPBYs take the slow (expression-tree) dispatch path:
  // the dispatcher extracts the key just for its hash and the worker
  // re-extracts it on its own core. Results must still be bit-identical.
  const char* source = "SELECT COUNT GROUPBY srcip, pkt_len / 256";
  const auto records = workload();
  QueryEngine single(compiler::compile_source(source), engine_config(0_s));
  single.process_batch(records);
  single.finish(12_s);

  ShardedEngine sharded(compiler::compile_source(source),
                        sharded_config(8, 0_s, 2));
  trace::replay_into(sharded, records, /*batch=*/777);
  sharded.finish(12_s);

  EXPECT_TRUE(
      sharded.program().switch_plans.at(0).fast_key_fields.empty());
  expect_tables_bit_identical(single.result(), sharded.result(),
                              "computed key");
}

TEST(ShardedEngine, BackingStoreIsFreshMidRun) {
  // The async eviction path must keep the backing store fresh while folding
  // continues: after the dispatcher has pushed everything and refresh
  // boundaries have fired, the merge thread eventually surfaces (nearly)
  // all processed packets without finish().
  const auto records = workload();
  ShardedEngineConfig config = sharded_config(4, 500_ms);
  ShardedEngine engine(
      compiler::compile_source("R1 = SELECT COUNT GROUPBY srcip"), config);
  const std::size_t half = records.size() / 2;
  engine.process_batch(std::span<const PacketRecord>(records).first(half));

  const auto total_in_backing = [&engine] {
    double total = 0;
    engine.backing("R1").for_each(
        [&](const kv::Key&, const kv::StateVector& v, bool) { total += v[0]; });
    return total;
  };
  // Workers/merge run asynchronously; poll briefly.
  double total = 0;
  for (int i = 0; i < 2000 && total < 0.5 * static_cast<double>(half); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    total = total_in_backing();
  }
  EXPECT_GT(total, 0.5 * static_cast<double>(half));
  engine.finish(12_s);
  EXPECT_DOUBLE_EQ(total_in_backing(), static_cast<double>(half));
}

}  // namespace
}  // namespace perfq::runtime
