// The dynamic attach/detach contract (engine_api.hpp, "Query lifecycle
// contract") and the multi-tenant service on top of it:
//
//   - THE ORACLE PROPERTY: a query attached at record boundary K produces
//     tables bit-identical to a fresh engine fed only the post-attach
//     suffix, on the serial engine and across sharded topologies (D x N),
//     whether it ends by detach mid-stream or by finish() — and the
//     pre-existing queries are not perturbed by either.
//   - Detach releases resources: a counting allocator proves the detached
//     tenant's backing store, plan and scratch go back to the heap.
//   - Admission control: the die-area budget admits exactly to the line,
//     rejects cleanly past it, and detach refunds the charge.
//   - The socket-facing line protocol and the loopback server round trip.
//
// This suite runs under TSan in CI: the concurrency tests (metrics polling
// and stream draining against live attach/detach) are the witnesses for the
// topology-mutex design.
#include <gtest/gtest.h>
#include <malloc.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_export.hpp"
#include "runtime/engine_builder.hpp"
#include "runtime_test_util.hpp"
#include "service/line_protocol.hpp"
#include "service/query_service.hpp"
#include "service/server.hpp"

// ---- counting allocator ----------------------------------------------------
// Global live-byte accounting for the detach-releases-memory proof. Uses
// malloc_usable_size so new/delete pairs balance exactly regardless of how
// the allocator rounds. (The cache slot arena is page-allocated and thus
// invisible here either way; what this measures is the heap side of a
// tenant: backing-store nodes, plan storage, fold-core scratch.)
namespace {
std::atomic<std::int64_t> g_live_bytes{0};

void* counted_alloc(std::size_t n) {
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc{};
  g_live_bytes.fetch_add(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  return p;
}
void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n) !=
      0) {
    throw std::bad_alloc{};
  }
  g_live_bytes.fetch_add(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  return p;
}
void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}

namespace perfq::runtime {
namespace {

const std::map<std::string, double> kParams = {{"alpha", 0.125}, {"K", 50}};

constexpr const char* kBaseSource = R"(
def counter (cnt, (pkt_len)):
    cnt = cnt + 1

BASE = SELECT 5tuple, counter GROUPBY 5tuple
)";

constexpr const char* kEwmaSource = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)";

// Non-linear (max has no merge function): exercises the segment machinery.
constexpr const char* kNonMtSource = R"(
def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple
)";

constexpr const char* kStreamSource =
    "DROPS = SELECT srcip, dstport WHERE tout == infinity\n";

/// Small shared geometry: 8 buckets x 8 ways thrashes on the workload and
/// divides evenly into 1 and 4 shards.
const kv::CacheGeometry kGeom = kv::CacheGeometry::set_associative(64, 8);

struct Topology {
  std::size_t shards = 0;  ///< 0 = serial
  std::size_t dispatchers = 1;
  [[nodiscard]] std::string label() const {
    return shards == 0 ? "serial"
                       : "D" + std::to_string(dispatchers) + "xS" +
                             std::to_string(shards);
  }
};
const Topology kTopologies[] = {
    {0, 1}, {1, 1}, {4, 1}, {1, 2}, {4, 2},
};

std::unique_ptr<Engine> make_engine(const char* source, Topology topo,
                                    Nanos refresh) {
  EngineBuilder builder(compiler::compile_source(source, kParams));
  builder.geometry(kGeom).refresh(refresh);
  if (topo.shards > 0) {
    builder.sharded(topo.shards)
        .dispatchers(topo.dispatchers)
        .ring_capacity(512)
        .dispatch_batch(64);
  }
  return builder.build();
}

/// Feed with deliberately uneven batch sizes so attach boundaries never line
/// up with dispatch or ring granularity.
void feed_uneven(Engine& engine, std::span<const PacketRecord> records) {
  static constexpr std::size_t kSizes[] = {1, 7, 64, 3, 256, 31};
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < records.size()) {
    const std::size_t n =
        std::min(kSizes[k++ % std::size(kSizes)], records.size() - i);
    engine.process_batch(records.subspan(i, n));
    i += n;
  }
}

/// Oracle: a fresh serial engine fed only the suffix, finished at `end`.
ResultTable oracle_table(const char* source,
                         std::span<const PacketRecord> suffix, Nanos refresh,
                         Nanos end) {
  auto engine = make_engine(source, Topology{0, 1}, refresh);
  feed_uneven(*engine, suffix);
  engine->finish(end);
  return engine->result();
}

// ---- the oracle property ---------------------------------------------------

enum class EndMode { kDetachMidRun, kFinish };

void run_attach_oracle(const char* tenant_source, Topology topo,
                       std::size_t attach_at, Nanos refresh, EndMode mode,
                       const std::vector<PacketRecord>& records,
                       const ResultTable& base_control) {
  const Nanos end = 12_s;
  // Mid-run detach leaves a >1000-record tail that keeps folding through the
  // freed slot; kFinish keeps the tenant resident to the end of the window.
  const std::size_t detach_at =
      mode == EndMode::kDetachMidRun
          ? std::min(records.size() - 1001, attach_at + 4000)
          : records.size();
  ASSERT_LT(attach_at, detach_at);
  const std::string context =
      topo.label() + " attach@" + std::to_string(attach_at) + " detach@" +
      std::to_string(detach_at) + " refresh=" + std::to_string(refresh.count());

  const std::span<const PacketRecord> all{records};
  auto engine = make_engine(kBaseSource, topo, refresh);
  feed_uneven(*engine, all.subspan(0, attach_at));

  AttachOptions options;
  options.name = "tenant";
  options.geometry = kGeom;
  engine->attach_query(compiler::compile_source(tenant_source, kParams),
                       options);
  EXPECT_EQ(engine->records_processed(), attach_at) << context;

  ResultTable tenant_table{lang::Schema{}};
  if (mode == EndMode::kDetachMidRun) {
    feed_uneven(*engine, all.subspan(attach_at, detach_at - attach_at));
    // Neighbor-detach non-perturbation, observed live: the base query's
    // snapshot is bit-identical just before and just after the detach.
    const EngineSnapshot before = engine->snapshot("BASE", end);
    tenant_table = engine->detach_query("tenant", end);
    const EngineSnapshot after = engine->snapshot("BASE", end);
    expect_tables_bit_identical(before.table, after.table,
                                context + " base around detach");
    feed_uneven(*engine, all.subspan(detach_at));
    engine->finish(end);
  } else {
    feed_uneven(*engine, all.subspan(attach_at));
    engine->finish(end);
    tenant_table = engine->table("tenant");
  }

  const ResultTable want = oracle_table(
      tenant_source, all.subspan(attach_at, detach_at - attach_at), refresh,
      end);
  expect_tables_bit_identical(want, tenant_table, context + " tenant");
  expect_tables_bit_identical(base_control, engine->table("BASE"),
                              context + " base unperturbed");
}

TEST(AttachOracle, LinearTenantBitIdenticalToSuffixOracle) {
  const auto records = test_workload();
  ASSERT_GT(records.size(), 6000u);
  // Refresh off: the tenant's flush boundaries (its own evictions + the end
  // flush) depend only on the suffix, so even the non-FP-exact ewma merge is
  // bit-identical to the oracle. Control: the base program alone over the
  // whole window (one serial control serves every topology).
  auto control = make_engine(kBaseSource, Topology{0, 1}, 0_s);
  control->process_batch(records);
  control->finish(12_s);
  const ResultTable base_control = control->result();

  for (const Topology topo : kTopologies) {
    for (const std::size_t attach_at :
         {std::size_t{0}, std::size_t{937}, records.size() - 3}) {
      run_attach_oracle(kEwmaSource, topo, attach_at, 0_s, EndMode::kFinish,
                        records, base_control);
    }
    for (const std::size_t attach_at : {std::size_t{1}, std::size_t{937}}) {
      run_attach_oracle(kEwmaSource, topo, attach_at, 0_s,
                        EndMode::kDetachMidRun, records, base_control);
    }
  }
}

TEST(AttachOracle, RefreshOnTenantBitIdenticalForExactMerges) {
  const auto records = test_workload();
  // With periodic refresh ON the resident engine and the suffix oracle flush
  // at different absolute times (the refresh clock anchors at each engine's
  // first record — see the lifecycle contract), so bit-identity additionally
  // needs an FP-exact merge: an integer counter, not ewma.
  auto control = make_engine(kBaseSource, Topology{0, 1}, 1_s);
  control->process_batch(records);
  control->finish(12_s);
  const ResultTable base_control = control->result();

  for (const Topology topo : kTopologies) {
    run_attach_oracle(kBaseSource, topo, 937, 1_s, EndMode::kFinish, records,
                      base_control);
    run_attach_oracle(kBaseSource, topo, 937, 1_s, EndMode::kDetachMidRun,
                      records, base_control);
  }
}

TEST(AttachOracle, NonLinearTenantMatchesWithAlignedFlushTimes) {
  const auto records = test_workload();
  // Non-linear kernels have no merge function: equivalence needs matching
  // flush times, so refresh stays off and detach/finish share `end`.
  auto control = make_engine(kBaseSource, Topology{0, 1}, 0_s);
  control->process_batch(records);
  control->finish(12_s);
  const ResultTable base_control = control->result();

  for (const Topology topo : kTopologies) {
    run_attach_oracle(kNonMtSource, topo, 937, 0_s, EndMode::kFinish, records,
                      base_control);
    run_attach_oracle(kNonMtSource, topo, 937, 0_s, EndMode::kDetachMidRun,
                      records, base_control);
  }
}

TEST(AttachOracle, StreamTenantRowsMatchSuffixOracle) {
  const auto records = test_workload();
  const std::span<const PacketRecord> all{records};
  const std::size_t attach_at = 937;
  const ResultTable want =
      oracle_table(kStreamSource, all.subspan(attach_at), 0_s, 12_s);
  for (const Topology topo : {Topology{0, 1}, Topology{4, 2}}) {
    auto engine = make_engine(kBaseSource, topo, 0_s);
    feed_uneven(*engine, all.subspan(0, attach_at));
    AttachOptions options;
    options.name = "drops";
    engine->attach_query(compiler::compile_source(kStreamSource, kParams),
                         options);
    feed_uneven(*engine, all.subspan(attach_at));
    engine->finish(12_s);
    expect_tables_bit_identical(want, engine->table("drops"),
                                topo.label() + " stream tenant");
  }
}

// ---- validation: clean rejection, never degraded state ---------------------

TEST(AttachValidation, RejectsNonAttachableProgramsWithoutStateChange) {
  auto engine = make_engine(kBaseSource, Topology{4, 1}, 0_s);
  const auto records = test_workload();
  engine->process_batch(std::span{records}.subspan(0, 2000));

  AttachOptions options;
  options.name = "t";
  // Multi-result program (two switch plans).
  EXPECT_THROW(engine->attach_query(
                   compiler::compile_source("R1 = SELECT COUNT GROUPBY 5tuple\n"
                                            "R2 = SELECT COUNT GROUPBY qid\n",
                                            kParams),
                   options),
               ConfigError);
  // Collection layer downstream of the GROUPBY.
  EXPECT_THROW(
      engine->attach_query(
          compiler::compile_source(
              "R1 = SELECT COUNT GROUPBY 5tuple\n"
              "R2 = SELECT * FROM R1 WHERE COUNT > K\n",
              kParams),
          options),
      ConfigError);
  // Name collisions: base query, then a live tenant.
  options.name = "BASE";
  EXPECT_THROW(engine->attach_query(
                   compiler::compile_source(kEwmaSource, kParams), options),
               ConfigError);
  options.name = "t";
  engine->attach_query(compiler::compile_source(kEwmaSource, kParams),
                       options);
  EXPECT_THROW(engine->attach_query(
                   compiler::compile_source(kEwmaSource, kParams), options),
               ConfigError);
  // Sharded slice constraint: buckets must divide into shards.
  options.name = "odd";
  options.geometry = kv::CacheGeometry::set_associative(66, 2);  // 33 buckets
  EXPECT_THROW(engine->attach_query(
                   compiler::compile_source(kEwmaSource, kParams), options),
               ConfigError);
  // Detach of base-program and unknown names.
  EXPECT_THROW((void)engine->detach_query("BASE", 1_s), ConfigError);
  EXPECT_THROW((void)engine->detach_query("nosuch", 1_s), QueryError);

  // None of the rejections perturbed the engine: it still folds and ends.
  engine->process_batch(std::span{records}.subspan(2000, 1000));
  engine->finish(12_s);
  EXPECT_EQ(engine->records_processed(), 3000u);
  EXPECT_GT(engine->table("t").row_count(), 0u);
}

TEST(AttachValidation, AttachEpochRecordedInStatsAndMetrics) {
  auto engine = make_engine(kBaseSource, Topology{0, 1}, 0_s);
  const auto records = test_workload();
  engine->process_batch(std::span{records}.subspan(0, 1234));
  AttachOptions options;
  options.name = "late";
  options.geometry = kGeom;
  engine->attach_query(compiler::compile_source(kEwmaSource, kParams),
                       options);
  bool seen = false;
  for (const StoreStats& s : engine->store_stats()) {
    if (s.name != "late") continue;
    seen = true;
    EXPECT_TRUE(s.attached);
    EXPECT_EQ(s.attach_records, 1234u);
  }
  EXPECT_TRUE(seen);
  const std::string prom = obs::metrics_to_prometheus(engine->metrics());
  EXPECT_NE(prom.find("perfq_store_attached{query=\"late\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("perfq_store_attach_records{query=\"late\"} 1234"),
            std::string::npos);
  EXPECT_NE(prom.find("perfq_store_attached{query=\"BASE\"} 0"),
            std::string::npos);
  const std::string json = obs::metrics_to_json(engine->metrics());
  EXPECT_NE(json.find("store_attach_records"), std::string::npos);
}

// ---- detach releases resources ---------------------------------------------

TEST(DetachResources, HeapReturnsToBaselineAfterDetach) {
  // Base program is a pass-through stream (callback sink, nothing retained)
  // so repeated feeds don't grow base-side state; the only durable growth
  // between the measurement points is the attached tenant.
  auto sink = std::make_shared<CallbackStreamSink>([](const StreamBatch&) {});
  EngineBuilder builder(compiler::compile_source(kStreamSource, kParams));
  builder.geometry(kGeom).stream_sink("DROPS", std::move(sink));
  auto engine = builder.build();
  const auto records = test_workload();

  const auto cycle = [&] {
    AttachOptions options;
    options.name = "t1";
    options.geometry = kGeom;
    engine->attach_query(compiler::compile_source(kEwmaSource, kParams),
                         options);
    engine->process_batch(records);
    return engine->detach_query("t1", 20_s);
  };

  // Warmup: grows every retained capacity (engine scratch, vector slack)
  // to its steady state so the measured cycle is allocation-neutral.
  { const ResultTable t = cycle(); }
  const std::int64_t baseline = g_live_bytes.load(std::memory_order_relaxed);

  std::int64_t mid = 0;
  {
    AttachOptions options;
    options.name = "t1";
    options.geometry = kGeom;
    engine->attach_query(compiler::compile_source(kEwmaSource, kParams),
                         options);
    engine->process_batch(records);
    mid = g_live_bytes.load(std::memory_order_relaxed);
    const ResultTable t = engine->detach_query("t1", 20_s);
    EXPECT_GT(t.row_count(), 0u);
  }
  const std::int64_t after = g_live_bytes.load(std::memory_order_relaxed);

  // The live tenant holds real heap (backing-store nodes for ~400 keys,
  // plan + program storage); after detach it is all returned.
  EXPECT_GT(mid - baseline, 16 * 1024) << "tenant heap not measurable";
  EXPECT_LE(after - baseline, 4 * 1024)
      << "detach leaked ~" << (after - baseline) << " bytes";
}

// ---- the service: admission, protocol, server ------------------------------

service::QueryService make_service(std::size_t shards = 0) {
  EngineBuilder builder(compiler::compile_source(kBaseSource, kParams));
  builder.geometry(kGeom);
  if (shards > 0) builder.sharded(shards);
  service::ServiceConfig config;
  config.tenant_geometry = kGeom;
  return service::QueryService(builder.build(), config);
}

TEST(QueryService, AdmissionAdmitsToTheLineAndRefundsOnDetach) {
  EngineBuilder builder(compiler::compile_source(kBaseSource, kParams));
  builder.geometry(kGeom);
  service::ServiceConfig config;
  config.tenant_geometry = kGeom;
  // Budget exactly one tenant: ewma state is 1 dim over a 13-byte 5-tuple
  // key, so one 64-slot slice prices to slots x (104 + 64) bits.
  const double one = config.budget.price(
      kGeom.total_slots(),
      analysis::AdmissionBudget::bits_per_pair(13, 1));
  config.budget.max_die_fraction = one * 1.5;
  service::QueryService svc(builder.build(), config);

  const auto records = test_workload();
  svc.process_batch(std::span{records}.subspan(0, 500));

  const service::TenantInfo first = svc.attach("t1", kEwmaSource);
  EXPECT_DOUBLE_EQ(first.die_fraction, one);
  EXPECT_EQ(first.attach_records, 500u);
  EXPECT_THROW(svc.attach("t2", kEwmaSource), ConfigError);
  EXPECT_EQ(svc.tenants().size(), 1u);  // rejected attach left no tenant
  EXPECT_DOUBLE_EQ(svc.used_die_fraction(), one);

  // The engine was not perturbed by the rejection: ingest continues.
  svc.process_batch(std::span{records}.subspan(500, 500));

  { const ResultTable t = svc.detach("t1"); }
  EXPECT_DOUBLE_EQ(svc.used_die_fraction(), 0.0);
  const service::TenantInfo again = svc.attach("t2", kEwmaSource);
  EXPECT_EQ(again.attach_records, 1000u);
  svc.process_batch(std::span{records}.subspan(1000, 1000));
  svc.finish();
  EXPECT_GT(svc.table("t2").row_count(), 0u);
}

TEST(QueryService, StreamTenantDrainsConcurrentlyWithIngest) {
  service::QueryService svc = make_service();
  const auto records = test_workload();
  const std::span<const PacketRecord> all{records};
  svc.process_batch(all.subspan(0, 100));
  const service::TenantInfo info =
      svc.attach("drops", "SELECT srcip, dstport WHERE tout == infinity\n");
  EXPECT_EQ(info.kind, AttachKind::kStreamSelect);
  EXPECT_DOUBLE_EQ(info.die_fraction, 0.0);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drained{0};
  std::thread drainer([&] {
    std::vector<std::vector<double>> rows;
    while (!done.load(std::memory_order_acquire)) {
      drained.fetch_add(svc.drain("drops", rows),
                        std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 100; i < records.size(); i += 512) {
    svc.process_batch(all.subspan(i, std::min<std::size_t>(512, records.size() - i)));
  }
  done.store(true, std::memory_order_release);
  drainer.join();

  // Post-quiescence accounting: delivered == drained + still-buffered +
  // ring-dropped.
  std::vector<std::vector<double>> rows;
  const std::uint64_t tail = svc.drain("drops", rows);
  const auto metrics = svc.metrics();
  ASSERT_EQ(metrics.streams.size(), 1u);
  EXPECT_TRUE(metrics.streams[0].attached);
  EXPECT_GT(metrics.streams[0].rows_delivered, 0u);
  EXPECT_EQ(metrics.streams[0].rows_delivered,
            drained.load() + tail + metrics.streams[0].rows_dropped);
  { const ResultTable t = svc.detach("drops"); }
  EXPECT_THROW(svc.drain("drops", rows), ConfigError);
}

TEST(QueryService, ConcurrentClientsAgainstShardedIngest) {
  service::QueryService svc = make_service(/*shards=*/4);
  const auto records = test_workload();
  const std::span<const PacketRecord> all{records};

  std::atomic<bool> ingest_done{false};
  std::thread ingest([&] {
    for (std::size_t i = 0; i < records.size(); i += 256) {
      svc.process_batch(
          all.subspan(i, std::min<std::size_t>(256, records.size() - i)));
    }
    ingest_done.store(true, std::memory_order_release);
  });
  std::thread client([&] {
    for (int i = 0; i < 10; ++i) {
      svc.attach("c", kEwmaSource);
      (void)svc.snapshot("c");
      (void)svc.snapshot("BASE");
      const ResultTable t = svc.detach("c");
    }
  });
  std::thread monitor([&] {
    while (!ingest_done.load(std::memory_order_acquire)) {
      (void)obs::metrics_to_prometheus(svc.metrics());
    }
  });
  ingest.join();
  client.join();
  monitor.join();
  svc.finish();
  EXPECT_EQ(svc.records_processed(), records.size());
}

TEST(LineProtocol, CommandsRoundTrip) {
  service::QueryService svc = make_service();
  const auto records = test_workload();
  svc.process_batch(records);

  EXPECT_EQ(service::execute_line(svc, "PING").to_wire(), "OK 0\n");
  const auto attach = service::execute_line(
      svc, "ATTACH t1 SELECT 5tuple, COUNT GROUPBY 5tuple");
  ASSERT_TRUE(attach.ok) << attach.error;
  EXPECT_NE(attach.lines.at(0).find("kind=switch"), std::string::npos);
  // Escaped multi-line source (a def block) through the one-line transport.
  const std::string multi = service::escape_source(std::string(kEwmaSource));
  EXPECT_NE(multi.find("\\n"), std::string::npos);
  EXPECT_EQ(service::unescape_source(multi), kEwmaSource);
  const auto attach2 = service::execute_line(svc, "ATTACH t2 " + multi);
  ASSERT_TRUE(attach2.ok) << attach2.error;

  const auto list = service::execute_line(svc, "LIST");
  ASSERT_TRUE(list.ok);
  ASSERT_EQ(list.lines.size(), 3u);  // two tenants + the budget line
  const auto snap = service::execute_line(svc, "SNAPSHOT t1");
  ASSERT_TRUE(snap.ok);
  EXPECT_GT(snap.lines.size(), 3u);
  const auto prom = service::execute_line(svc, "PROM");
  ASSERT_TRUE(prom.ok);

  const auto bad = service::execute_line(svc, "DETACH nosuch");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.to_wire().find("ERR "), std::string::npos);
  const auto unknown = service::execute_line(svc, "FROBNICATE");
  EXPECT_FALSE(unknown.ok);

  EXPECT_TRUE(service::execute_line(svc, "DETACH t1").ok);
  EXPECT_TRUE(service::execute_line(svc, "DETACH t2").ok);
  EXPECT_TRUE(service::execute_line(svc, "SHUTDOWN").shutdown);
}

TEST(QueryServer, LoopbackSocketRoundTrip) {
  service::QueryService svc = make_service();
  const auto records = test_workload();
  svc.process_batch(records);
  service::QueryServer server(svc, /*port=*/0);
  ASSERT_GT(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string request =
      "PING\nATTACH t1 SELECT 5tuple, COUNT GROUPBY 5tuple\nLIST\nQUIT\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(reply.find("OK 0\n"), std::string::npos);           // PING
  EXPECT_NE(reply.find("attached 't1'"), std::string::npos);    // ATTACH
  EXPECT_NE(reply.find("tenant 't1'"), std::string::npos);      // LIST
  EXPECT_FALSE(server.shutdown_requested());
  server.stop();
  EXPECT_EQ(svc.tenants().size(), 1u);
}

}  // namespace
}  // namespace perfq::runtime
