// Figure 5: eviction rate vs. cache size for the three cache geometries.
//
// Setup mirrors §4: the query is SELECT COUNT GROUPBY 5tuple over a 5-minute
// CAIDA-like trace; key-value pairs are 128 bits (104-bit 5-tuple key +
// 24-bit counter), cache capacities sweep 8..256 Mbit (2^16..2^21 pairs at
// full scale). Left panel: evictions as % of packets (trace-size
// independent). Right panel: absolute backing-store writes/s under the
// datacenter workload model (850 B avg packets, 30% utilization, 1 GHz).
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/area_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/cache.hpp"
#include "trace/flow_session.hpp"

namespace {

using namespace perfq;

struct GeometryResult {
  double eviction_fraction = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t evictions = 0;
};

GeometryResult run_config(const trace::TraceConfig& config,
                          kv::CacheGeometry geometry) {
  auto kernel = std::make_shared<kv::CountKernel>();
  kv::Cache cache(geometry, kernel);
  // Pure eviction-rate study: evicted values are dropped (Fig. 5 measures
  // the write rate, not merge semantics — those are property-tested).
  cache.set_eviction_sink({});

  trace::FlowSessionGenerator gen(config);
  while (auto rec = gen.next()) {
    const auto bytes = rec->pkt.flow.to_bytes();
    cache.process(kv::Key{std::span<const std::byte>{bytes.data(), bytes.size()}},
                  *rec);
  }
  GeometryResult out;
  out.eviction_fraction = cache.stats().eviction_fraction();
  out.packets = cache.stats().packets;
  out.evictions = cache.stats().evictions;
  return out;
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const trace::TraceConfig config = bench::scaled_caida(scale);
  bench::print_scale_banner("Figure 5: eviction rate vs cache size", scale,
                            config);

  constexpr int kBitsPerPair = 128;  // §4: 104-bit key + 24-bit value
  const analysis::DatacenterWorkloadModel dc;

  TextTable left("Fig 5 (left): evictions as % of packets");
  left.set_header({"cache (Mbit, full-scale)", "pairs (scaled)", "hash-table",
                   "8-way", "fully-assoc"});
  TextTable right("Fig 5 (right): backing-store writes/s at 22.6M pkts/s");
  right.set_header({"cache (Mbit, full-scale)", "hash-table", "8-way",
                    "fully-assoc"});

  for (int log2_pairs = 16; log2_pairs <= 21; ++log2_pairs) {
    const std::uint64_t full_pairs = 1ull << log2_pairs;
    auto scaled_pairs = static_cast<std::uint64_t>(
        static_cast<double>(full_pairs) * scale);
    scaled_pairs = std::max<std::uint64_t>(scaled_pairs - scaled_pairs % 8, 8);

    const double mbits = kv::mbits_for_pairs(full_pairs, kBitsPerPair);
    const GeometryResult hash =
        run_config(config, kv::CacheGeometry::hash_table(scaled_pairs));
    const GeometryResult eight =
        run_config(config, kv::CacheGeometry::set_associative(scaled_pairs, 8));
    const GeometryResult full =
        run_config(config, kv::CacheGeometry::fully_associative(scaled_pairs));

    left.add_row({fmt_double(mbits, 0), std::to_string(scaled_pairs),
                  fmt_percent(hash.eviction_fraction),
                  fmt_percent(eight.eviction_fraction),
                  fmt_percent(full.eviction_fraction)});
    right.add_row({fmt_double(mbits, 0),
                   fmt_si(dc.evictions_per_sec(hash.eviction_fraction)),
                   fmt_si(dc.evictions_per_sec(eight.eviction_fraction)),
                   fmt_si(dc.evictions_per_sec(full.eviction_fraction))});

    // Paper-shape checkpoints at the 32-Mbit target size.
    if (log2_pairs == 18) {
      std::printf(
          "# 32-Mbit checkpoint: 8-way %.2f%% of packets (paper: 3.55%%), "
          "=> %s writes/s (paper: ~802K); 8-way vs fully-assoc gap %.2f%% "
          "(paper: within 2%% of optimum)\n",
          eight.eviction_fraction * 100.0,
          fmt_si(dc.evictions_per_sec(eight.eviction_fraction)).c_str(),
          (eight.eviction_fraction - full.eviction_fraction) * 100.0);
    }
  }

  left.print();
  right.print();
  std::printf("\nCSV (left panel):\n%s", left.to_csv().c_str());
  return 0;
}
