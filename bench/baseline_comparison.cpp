// Ablation & baseline comparison (supports §1/§5's positioning and DESIGN.md
// design decision 1):
//
//   1. split store WITH the linear-in-state merge  -> exact counts
//   2. split store WITHOUT merge (erase-on-evict, keep latest epoch only)
//      -> undercounts, the failure mode the merge exists to fix
//   3. Count-Min sketch at the same memory          -> overcounts
//   4. 1-in-N sampled NetFlow                       -> misses mice flows
//   5. exact unbounded table                        -> correct but needs
//      hundreds of Mbit on-chip (the infeasible strawman of §4)
//
// Error metric: mean absolute relative error of per-flow packet counts,
// plus flow coverage. Everything runs at identical SRAM budgets.
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "baselines/cms.hpp"
#include "baselines/netflow.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/kvstore.hpp"
#include "trace/flow_session.hpp"

namespace {

using namespace perfq;

/// A COUNT kernel that *pretends* to be non-linear: the backing store then
/// refuses to merge and keeps only per-epoch segments — exactly what a split
/// design without §3.2's merge machinery would report.
class CountNoMergeKernel final : public kv::FoldKernel {
 public:
  [[nodiscard]] std::string name() const override { return "count-no-merge"; }
  [[nodiscard]] std::size_t state_dims() const override { return 1; }
  [[nodiscard]] kv::StateVector initial_state() const override {
    return kv::StateVector(1);
  }
  void update(kv::StateVector& state, const PacketRecord& rec) const override {
    kv::CountKernel{}.update(state, rec);
  }
  [[nodiscard]] kv::Linearity linearity() const override {
    return kv::Linearity::kNotLinear;
  }
};

struct ErrorStats {
  double mean_rel_error = 0.0;
  double covered_fraction = 0.0;  ///< flows with a nonzero estimate
};

template <typename EstimateFn>
ErrorStats score(const std::unordered_map<FiveTuple, std::uint64_t>& truth,
                 EstimateFn&& estimate) {
  double err = 0.0;
  std::uint64_t covered = 0;
  for (const auto& [flow, count] : truth) {
    const double est = estimate(flow);
    if (est > 0.0) ++covered;
    err += std::abs(est - static_cast<double>(count)) /
           static_cast<double>(count);
  }
  ErrorStats out;
  out.mean_rel_error = err / static_cast<double>(truth.size());
  out.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(truth.size());
  return out;
}

}  // namespace

int main() {
  using kv::Key;
  const double scale = bench::scale_from_env(1.0 / 128.0);
  const trace::TraceConfig config = bench::scaled_caida(scale);
  bench::print_scale_banner(
      "Baseline comparison: per-flow counts at equal SRAM budget", scale,
      config);

  // SRAM budget: pairs such that the cache is ~10% of flows (the interesting
  // contention regime, like the paper's 32 Mbit vs 3.8M flows).
  auto pairs = static_cast<std::uint64_t>(
      static_cast<double>(config.num_flows) * 0.10);
  pairs = std::max<std::uint64_t>(pairs - pairs % 8, 8);
  const double budget_mbits = kv::mbits_for_pairs(pairs, 128);

  auto kernel = std::make_shared<kv::CountKernel>();
  kv::KeyValueStore with_merge(kv::CacheGeometry::set_associative(pairs, 8),
                               kernel);
  // Ablation: same cache, but the backing store only keeps the newest epoch
  // (what you get without the linear-in-state merge).
  auto no_merge_kernel = std::make_shared<CountNoMergeKernel>();
  kv::KeyValueStore no_merge(kv::CacheGeometry::set_associative(pairs, 8),
                             no_merge_kernel);
  // CMS sized to the same bit budget (32-bit counters).
  const auto cms_counters =
      static_cast<std::size_t>(budget_mbits * 1024.0 * 1024.0 / 32.0);
  baselines::CountMinSketch sketch(4, std::max<std::size_t>(cms_counters / 4, 16),
                                   77, /*conservative=*/true);
  baselines::SampledFlowTable sampled(100, 7);
  baselines::ExactFlowTable exact;

  std::unordered_map<FiveTuple, std::uint64_t> truth;
  trace::FlowSessionGenerator gen(config);
  while (auto rec = gen.next()) {
    const auto bytes = rec->pkt.flow.to_bytes();
    const Key key{std::span<const std::byte>{bytes.data(), bytes.size()}};
    with_merge.process(key, *rec);
    no_merge.process(key, *rec);
    sketch.add(rec->pkt.flow);
    sampled.process(*rec);
    exact.process(*rec);
    ++truth[rec->pkt.flow];
  }
  with_merge.flush(config.duration);
  no_merge.flush(config.duration);

  auto kv_estimate = [](const kv::KeyValueStore& store) {
    return [&store](const FiveTuple& flow) {
      const auto bytes = flow.to_bytes();
      const Key key{std::span<const std::byte>{bytes.data(), bytes.size()}};
      const kv::StateVector* v = store.read(key);
      return v == nullptr ? 0.0 : (*v)[0];
    };
  };

  const ErrorStats merged = score(truth, kv_estimate(with_merge));
  const ErrorStats unmerged = score(truth, kv_estimate(no_merge));
  const ErrorStats cms = score(truth, [&](const FiveTuple& f) {
    return static_cast<double>(sketch.estimate(f));
  });
  const ErrorStats sflow = score(truth, [&](const FiveTuple& f) {
    return sampled.estimate_packets(f);
  });

  TextTable table("Per-flow COUNT at ~" + fmt_double(budget_mbits, 1) +
                  " Mbit on-chip budget");
  table.set_header(
      {"approach", "mean |rel. error|", "flows covered", "on-chip Mbit"});
  table.add_row({"split KV store + merge (this paper)",
                 fmt_percent(merged.mean_rel_error),
                 fmt_percent(merged.covered_fraction),
                 fmt_double(budget_mbits, 1)});
  table.add_row({"split KV store, no merge (ablation)",
                 fmt_percent(unmerged.mean_rel_error),
                 fmt_percent(unmerged.covered_fraction),
                 fmt_double(budget_mbits, 1)});
  table.add_row({"Count-Min sketch (conservative)",
                 fmt_percent(cms.mean_rel_error),
                 fmt_percent(cms.covered_fraction),
                 fmt_double(sketch.mbits(), 1)});
  table.add_row({"sampled NetFlow (1-in-100)", fmt_percent(sflow.mean_rel_error),
                 fmt_percent(sflow.covered_fraction), "n/a (off-switch)"});
  table.add_row({"exact unbounded table (strawman)", "0.00%", "100.00%",
                 fmt_double(exact.required_mbits(), 1) + " (!)"});
  table.print();

  std::printf(
      "\nExpected shape: merge => 0%% error at cache-sized SRAM; no-merge "
      "loses evicted history; CMS/sampling trade accuracy; exact needs %.0fx "
      "the SRAM.\n",
      exact.required_mbits() / budget_mbits);
  return 0;
}
