// Microbenchmarks (google-benchmark) of the key-value store primitives:
// per-packet cache operations across geometries, fold-kernel update costs
// (hand-written vs compiled-VM vs AST-interpreted), merge cost, batched vs
// scalar engine processing, and TCAM lookup. These support the §3.3
// feasibility discussion: the per-packet work is one hash, one bucket LRU
// touch, and one small affine update — the kind of logic the paper argues is
// cheap relative to the SRAM array.
//
// Unless --benchmark_out is given, results are written to BENCH_kvstore.json
// (google-benchmark JSON) in the working directory so the perf trajectory of
// the hot path is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/hugepage.hpp"
#include "compiler/key_router.hpp"
#include "compiler/program.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/kvstore.hpp"
#include "packet/wire.hpp"
#include "packet/wire_view.hpp"
#include "runtime/engine_builder.hpp"
#include "switchsim/match_compiler.hpp"
#include "trace/replay.hpp"
#include "trace/simple.hpp"

namespace {

using namespace perfq;

std::vector<PacketRecord> workload(std::uint64_t n, std::uint32_t flows) {
  return trace::zipf_records(n, flows, 1.1, 99);
}

std::vector<kv::Key> keys_of(const std::vector<PacketRecord>& records) {
  std::vector<kv::Key> keys;
  keys.reserve(records.size());
  for (const auto& rec : records) {
    const auto bytes = rec.pkt.flow.to_bytes();
    keys.emplace_back(std::span<const std::byte>{bytes.data(), bytes.size()});
  }
  return keys;
}

void BM_CacheProcess(benchmark::State& state, kv::CacheGeometry geometry) {
  const auto records = workload(1 << 16, 4096);
  const auto keys = keys_of(records);
  auto kernel = std::make_shared<kv::CountKernel>();
  kv::Cache cache(geometry, kernel);
  cache.set_eviction_sink({});
  std::size_t i = 0;
  for (auto _ : state) {
    cache.process(keys[i], records[i]);
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CacheHashTable(benchmark::State& state) {
  BM_CacheProcess(state, kv::CacheGeometry::hash_table(1 << 12));
}
void BM_Cache8Way(benchmark::State& state) {
  BM_CacheProcess(state, kv::CacheGeometry::set_associative(1 << 12, 8));
}
void BM_CacheFullyAssociative(benchmark::State& state) {
  BM_CacheProcess(state, kv::CacheGeometry::fully_associative(1 << 12));
}
BENCHMARK(BM_CacheHashTable);
BENCHMARK(BM_Cache8Way);
BENCHMARK(BM_CacheFullyAssociative);

void BM_SplitStoreWithMerge(benchmark::State& state) {
  // Full split store (cache + merging backing store) under heavy eviction.
  const auto records = workload(1 << 16, 4096);
  const auto keys = keys_of(records);
  auto kernel = std::make_shared<kv::EwmaKernel>(0.125);
  kv::KeyValueStore store(kv::CacheGeometry::set_associative(512, 8), kernel);
  std::size_t i = 0;
  for (auto _ : state) {
    store.process(keys[i], records[i]);
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SplitStoreWithMerge);

template <typename Kernel>
void BM_KernelUpdate(benchmark::State& state, Kernel kernel) {
  const auto records = workload(4096, 64);
  kv::StateVector s = kernel.initial_state();
  std::size_t i = 0;
  for (auto _ : state) {
    kernel.update(s, records[i]);
    benchmark::DoNotOptimize(s);
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_UpdateCount(benchmark::State& state) {
  BM_KernelUpdate(state, kv::CountKernel{});
}
void BM_UpdateEwma(benchmark::State& state) {
  BM_KernelUpdate(state, kv::EwmaKernel{0.125});
}
void BM_UpdateOutOfSeq(benchmark::State& state) {
  BM_KernelUpdate(state, kv::OutOfSeqKernel{});
}
BENCHMARK(BM_UpdateCount);
BENCHMARK(BM_UpdateEwma);
BENCHMARK(BM_UpdateOutOfSeq);

const compiler::CompiledFoldKernel& compiled_ewma_kernel() {
  static const auto analysis = lang::analyze_source(R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple
)",
                                                    {{"alpha", 0.125}});
  static const compiler::CompiledFoldKernel kernel(analysis.folds[0], {});
  return kernel;
}

void BM_CompiledEwmaUpdate(benchmark::State& state) {
  // Bytecode-VM compiled fold vs. the hand-written kernel above.
  const compiler::CompiledFoldKernel& kernel = compiled_ewma_kernel();
  const auto records = workload(4096, 64);
  kv::StateVector s = kernel.initial_state();
  std::size_t i = 0;
  for (auto _ : state) {
    kernel.update(s, records[i]);
    benchmark::DoNotOptimize(s);
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompiledEwmaUpdate);

void BM_CompiledEwmaUpdateInterpreted(benchmark::State& state) {
  // The pre-VM reference path: per-packet AST walking. Kept as the
  // before/after counter for the fold VM.
  const compiler::CompiledFoldKernel& kernel = compiled_ewma_kernel();
  const auto records = workload(4096, 64);
  kv::StateVector s = kernel.initial_state();
  std::size_t i = 0;
  for (auto _ : state) {
    kernel.update_interpreted(s, records[i]);
    benchmark::DoNotOptimize(s);
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompiledEwmaUpdateInterpreted);

// ---- batched vs scalar engine processing ----------------------------------
// Same program, same records; the only difference is process() per record vs
// process_batch() over the whole span (up-front key extraction + bucket
// prefetch). The ratio is the batching win. Engines are built the way every
// driver builds them — through EngineBuilder, measured through the virtual
// Engine surface (the batch-level call amortizes the dispatch to nothing;
// this bench is the guard that keeps it that way).

void report_engine_metrics(benchmark::State& state,
                           const runtime::Engine& engine) {
  // The engine's own telemetry, attached as bench counters: the same run
  // yields both the throughput number and the why behind it (hit rate,
  // eviction pressure, tail latency) without a second instrumented build.
  const runtime::EngineMetrics m = engine.metrics();
  double packets = 0, hits = 0, evictions = 0;
  for (const auto& q : m.queries) {
    packets += static_cast<double>(static_cast<std::uint64_t>(q.cache.packets));
    hits += static_cast<double>(static_cast<std::uint64_t>(q.cache.hits));
    evictions +=
        static_cast<double>(static_cast<std::uint64_t>(q.cache.evictions));
  }
  state.counters["cache_hit_rate"] =
      benchmark::Counter(packets > 0 ? hits / packets : 0.0);
  state.counters["evictions"] = benchmark::Counter(evictions);
  if (m.batch_ns.count > 0) {
    state.counters["batch_p99_ns"] =
        benchmark::Counter(m.batch_ns.quantile_ns(0.99));
  }
  if (m.engine == "sharded") {
    double stalls = 0;
    for (const auto& ring : m.rings) {
      stalls += static_cast<double>(ring.push_stalls);
    }
    state.counters["ring_push_stalls"] = benchmark::Counter(stalls);
    if (m.absorb_ns.count > 0) {
      state.counters["absorb_p99_ns"] =
          benchmark::Counter(m.absorb_ns.quantile_ns(0.99));
    }
  }
}

compiler::CompiledProgram engine_bench_program() {
  // Compiled fresh per engine (CompiledProgram owns its ASTs and is
  // move-only); compile cost is outside the measured loop either way.
  return compiler::compile_source("SELECT COUNT GROUPBY 5tuple");
}

kv::CacheGeometry engine_bench_geometry() {
  // Large enough that the slot array dwarfs the LLC: scalar processing
  // stalls on one DRAM bucket fetch per packet, which is exactly the
  // latency the batched path's prefetch overlaps.
  return kv::CacheGeometry::set_associative(1 << 18, 8);
}

void BM_EngineProcessScalar(benchmark::State& state) {
  const auto records = workload(1 << 18, 1 << 20);
  const auto engine = runtime::EngineBuilder(engine_bench_program())
                          .geometry(engine_bench_geometry())
                          .build();
  std::size_t i = 0;
  for (auto _ : state) {
    engine->process(records[i]);
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineProcessScalar);

void BM_EngineProcessBatch(benchmark::State& state) {
  const auto records = workload(1 << 18, 1 << 20);
  const auto engine = runtime::EngineBuilder(engine_bench_program())
                          .geometry(engine_bench_geometry())
                          .build();
  std::int64_t processed = 0;
  for (auto _ : state) {
    engine->process_batch(records);
    processed += static_cast<std::int64_t>(records.size());
  }
  state.SetItemsProcessed(processed);
  report_engine_metrics(state, *engine);
}
BENCHMARK(BM_EngineProcessBatch);

void BM_EngineProcessBatchHugePages(benchmark::State& state) {
  // Same as BM_EngineProcessBatch with the slot arena on 2 MiB pages: the
  // batched path's bucket prefetches are DTLB-capped at 4 KiB pages (the
  // ROADMAP open item); huge pages recover the difference.
  const auto records = workload(1 << 18, 1 << 20);
  const auto engine = runtime::EngineBuilder(engine_bench_program())
                          .geometry(engine_bench_geometry().with_huge_pages())
                          .build();
  std::int64_t processed = 0;
  for (auto _ : state) {
    engine->process_batch(records);
    processed += static_cast<std::int64_t>(records.size());
  }
  state.SetItemsProcessed(processed);
  state.counters["huge_pages_supported"] =
      benchmark::Counter(huge_pages_supported() ? 1 : 0);
}
BENCHMARK(BM_EngineProcessBatchHugePages);

// ---- sharded engine scaling ------------------------------------------------
// Same program, geometry and trace as BM_EngineProcessBatch; the argument is
// the shard (worker thread) count. Each shard owns a 1/N bucket slice, so
// the per-shard working set shrinks as N grows — on a multi-core machine the
// records/s curve is the ROADMAP "Scaling" table.

void BM_ShardedEngine(benchmark::State& state) {
  const auto records = workload(1 << 18, 1 << 20);
  const auto engine =
      runtime::EngineBuilder(engine_bench_program())
          .geometry(engine_bench_geometry().with_huge_pages())
          .sharded(static_cast<std::size_t>(state.range(0)))
          .build();
  std::int64_t processed = 0;
  for (auto _ : state) {
    const auto stats = trace::replay_into(*engine, records, /*batch=*/4096);
    processed += static_cast<std::int64_t>(stats.records);
  }
  state.SetItemsProcessed(processed);
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  report_engine_metrics(state, *engine);
}
// Wall-clock rate: the pipeline spans several threads, so CPU-time-based
// items/s would overstate throughput on loaded machines.
BENCHMARK(BM_ShardedEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ShardedEngineParallelDispatch(benchmark::State& state) {
  // Args: (dispatchers D, shards N). D co-dispatcher threads each route a
  // disjoint slice of every batch through the D×N ring matrix; the workers'
  // sequence-ordered merge keeps results bit-identical. On a multi-core
  // machine the D axis is the lever that lifts the serial-dispatch Amdahl
  // ceiling BM_ShardedEngine runs into.
  const auto records = workload(1 << 18, 1 << 20);
  const auto engine =
      runtime::EngineBuilder(engine_bench_program())
          .geometry(engine_bench_geometry().with_huge_pages())
          .sharded(static_cast<std::size_t>(state.range(1)))
          .dispatchers(static_cast<std::size_t>(state.range(0)))
          .build();
  std::int64_t processed = 0;
  for (auto _ : state) {
    const auto stats = trace::replay_into(*engine, records, /*batch=*/4096);
    processed += static_cast<std::int64_t>(stats.records);
  }
  state.SetItemsProcessed(processed);
  state.counters["dispatchers"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(state.range(1)));
}
BENCHMARK(BM_ShardedEngineParallelDispatch)
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({2, 4})
    ->UseRealTime();

void BM_TcamLookup(benchmark::State& state) {
  const auto analysis = lang::analyze_source(
      "SELECT COUNT GROUPBY 5tuple WHERE proto == TCP and qsize > 100");
  const auto entries =
      sw::compile_where_to_tcam(*analysis.queries[0].def.where, 1);
  sw::TcamTable table;
  for (auto e : *entries) table.install(std::move(e));
  const auto records = workload(4096, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(records[i]));
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TcamLookup);

void BM_KeyExtractAndPack(benchmark::State& state) {
  const auto program = compiler::compile_source("SELECT COUNT GROUPBY 5tuple");
  const auto records = workload(4096, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiler::extract_key(program.switch_plans[0], records[i]));
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KeyExtractAndPack);

void BM_KeyRouterHash(benchmark::State& state) {
  // The record-direct dispatch cost: pack the plain-field key into a stack
  // buffer and hash it, no kv::Key materialized. This is the per-record
  // serial work of the sharded dispatcher (vs BM_KeyExtractAndPack, the PR 2
  // dispatch path), i.e. the Amdahl term of multi-core scaling.
  const auto program = compiler::compile_source("SELECT COUNT GROUPBY 5tuple");
  const auto router = compiler::KeyRouter::make(program.switch_plans[0]);
  const auto records = workload(4096, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router->raw_hash(records[i]));
    if (++i == records.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KeyRouterHash);

// ---- wire-rate burst ingest ------------------------------------------------
// Capture bytes → table update with no materialized record in between.
// Frames are serialized once outside the loop; the measured work is exactly
// what a burst feed pays per frame: validate the fixed-offset headers, hash
// the key straight off the wire bytes, fold lazily.

struct WireWorkload {
  std::vector<std::vector<std::byte>> storage;  ///< owns the frame bytes
  std::vector<FrameObservation> frames;
};

WireWorkload wire_workload(std::uint64_t n, std::uint32_t flows) {
  const auto records = workload(n, flows);
  WireWorkload w;
  w.storage.reserve(records.size());
  w.frames.reserve(records.size());
  for (const auto& rec : records) {
    w.storage.push_back(wire::serialize(rec.pkt));
    FrameObservation frame;
    frame.bytes = w.storage.back();
    frame.qid = rec.qid;
    frame.tin = rec.tin;
    frame.tout = rec.tout;
    frame.qsize = rec.qsize;
    w.frames.push_back(frame);
  }
  return w;
}

void BM_WireToTable(benchmark::State& state) {
  // End-to-end lazy ingest on BM_Cache8Way's exact cache-resident config
  // (same zipf trace, same geometry): the target is the same M-records/s
  // class as prebuilt-key cache processing — the decode must stay invisible
  // next to the bucket access. Counters carry the ingest telemetry: how
  // many wire fields sema let the decode skip, and frames dropped.
  const WireWorkload w = wire_workload(1 << 16, 4096);
  auto program = compiler::compile_source("SELECT COUNT GROUPBY 5tuple");
  const double skipped =
      static_cast<double>(program.field_usage.wire_fields_skipped());
  const auto engine =
      runtime::EngineBuilder(std::move(program))
          .geometry(kv::CacheGeometry::set_associative(1 << 12, 8))
          .build();
  std::int64_t processed = 0;
  double damaged = 0;
  for (auto _ : state) {
    const auto stats = engine->process_wire_batch(w.frames);
    processed += static_cast<std::int64_t>(stats.parsed);
    damaged += static_cast<double>(stats.dropped());
  }
  state.SetItemsProcessed(processed);
  state.counters["wire_fields_skipped"] = benchmark::Counter(skipped);
  state.counters["damaged_frames"] = benchmark::Counter(damaged);
  report_engine_metrics(state, *engine);
}
BENCHMARK(BM_WireToTable);

void BM_WireToTableEager(benchmark::State& state) {
  // The materialize-per-frame reference on the identical config: parse each
  // frame into a PacketRecord, then process_batch. The BM_WireToTable ratio
  // is the lazy-decode win; kept as the before/after counter the way
  // BM_CompiledEwmaUpdateInterpreted anchors the fold VM.
  const WireWorkload w = wire_workload(1 << 16, 4096);
  const auto engine =
      runtime::EngineBuilder(
          compiler::compile_source("SELECT COUNT GROUPBY 5tuple"))
          .geometry(kv::CacheGeometry::set_associative(1 << 12, 8))
          .build();
  std::vector<PacketRecord> pending;
  pending.reserve(w.frames.size());
  std::int64_t processed = 0;
  for (auto _ : state) {
    pending.clear();
    for (const FrameObservation& frame : w.frames) {
      const auto parsed = wire::try_parse(frame.bytes);
      PacketRecord& rec = pending.emplace_back();
      rec.pkt = parsed->pkt;
      rec.qid = frame.qid;
      rec.tin = frame.tin;
      rec.tout = frame.tout;
      rec.qsize = frame.qsize;
    }
    engine->process_batch(pending);
    processed += static_cast<std::int64_t>(pending.size());
  }
  state.SetItemsProcessed(processed);
}
BENCHMARK(BM_WireToTableEager);

void BM_WireToTableDamaged(benchmark::State& state) {
  // Same burst with every 32nd frame snap-truncated: the skip-and-count
  // error path must not tax the surviving frames.
  WireWorkload w = wire_workload(1 << 16, 4096);
  for (std::size_t i = 0; i < w.storage.size(); i += 32) {
    w.storage[i].resize(10);
    w.frames[i].bytes = w.storage[i];
  }
  const auto engine =
      runtime::EngineBuilder(
          compiler::compile_source("SELECT COUNT GROUPBY 5tuple"))
          .geometry(kv::CacheGeometry::set_associative(1 << 12, 8))
          .build();
  std::int64_t processed = 0;
  double damaged = 0;
  for (auto _ : state) {
    const auto stats = engine->process_wire_batch(w.frames);
    processed += static_cast<std::int64_t>(stats.total());
    damaged += static_cast<double>(stats.dropped());
  }
  state.SetItemsProcessed(processed);  // frames offered, incl. skipped
  state.counters["damaged_frames"] = benchmark::Counter(damaged);
}
BENCHMARK(BM_WireToTableDamaged);

void BM_WireKeyHash(benchmark::State& state) {
  // Dispatch cost straight off the wire: validate + hash the plain-field
  // key at its fixed byte offsets, no record materialized. The wire-path
  // counterpart of BM_KeyRouterHash — together they bound what the sharded
  // caller saves by never building a PacketRecord before routing.
  const auto program = compiler::compile_source("SELECT COUNT GROUPBY 5tuple");
  const auto router = compiler::KeyRouter::make(program.switch_plans[0]);
  const WireWorkload w = wire_workload(4096, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    const FrameObservation& frame = w.frames[i];
    benchmark::DoNotOptimize(wire::check_frame(frame.bytes));
    benchmark::DoNotOptimize(router->raw_hash(wire_record_view(frame)));
    if (++i == w.frames.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireKeyHash);

}  // namespace

// Custom main: default --benchmark_out to BENCH_kvstore.json so every run
// leaves a machine-readable perf record unless the caller overrides it.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  bool has_fmt = false;
  for (int i = 1; i < argc; ++i) {
    // Exact-prefix matches: "--benchmark_out_format=..." alone must not
    // suppress the default output file, and an explicit format choice must
    // not be overridden by the appended default (last flag wins).
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_out_format=", 23) == 0) {
      has_fmt = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_kvstore.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) args.push_back(out_flag.data());
  if (!has_out && !has_fmt) args.push_back(fmt_flag.data());
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
