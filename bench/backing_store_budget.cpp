// §4 "Eviction Rate": the backing-store feasibility argument.
//
// Measures the 8-way cache's eviction fraction at the 32-Mbit target size on
// the CAIDA-like trace, converts it to writes/s under the datacenter
// workload model (22.6 M avg pkts/s), and compares against published
// single-core throughput of memcached/Redis-class stores — the paper's
// "802K writes per second ... within the capabilities of scale-out
// key-value stores".
#include <cstdio>
#include <memory>

#include "analysis/area_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/cache.hpp"
#include "trace/flow_session.hpp"

int main() {
  using namespace perfq;
  const double scale = bench::scale_from_env();
  const trace::TraceConfig config = bench::scaled_caida(scale);
  bench::print_scale_banner("Backing-store write budget (32-Mbit, 8-way)",
                            scale, config);

  constexpr int kBitsPerPair = 128;
  const std::uint64_t full_pairs = kv::pairs_for_mbits(32.0, kBitsPerPair);
  auto scaled_pairs =
      static_cast<std::uint64_t>(static_cast<double>(full_pairs) * scale);
  scaled_pairs = std::max<std::uint64_t>(scaled_pairs - scaled_pairs % 8, 8);

  auto kernel = std::make_shared<kv::CountKernel>();
  kv::Cache cache(kv::CacheGeometry::set_associative(scaled_pairs, 8), kernel);
  cache.set_eviction_sink({});
  trace::FlowSessionGenerator gen(config);
  while (auto rec = gen.next()) {
    const auto bytes = rec->pkt.flow.to_bytes();
    cache.process(
        kv::Key{std::span<const std::byte>{bytes.data(), bytes.size()}}, *rec);
  }
  const double fraction = cache.stats().eviction_fraction();

  const analysis::DatacenterWorkloadModel dc;
  const analysis::BackingStoreCapacity stores;
  const double writes = dc.evictions_per_sec(fraction);

  TextTable table("Backing-store budget at the 32-Mbit design point");
  table.set_header({"quantity", "measured / derived", "paper"});
  table.add_row({"eviction fraction (8-way, 32 Mbit)", fmt_percent(fraction),
                 "3.55%"});
  table.add_row({"avg packet rate (850B, 30% util, 1GHz)",
                 fmt_si(dc.avg_pkts_per_sec()) + " pkts/s", "22.6M pkts/s"});
  table.add_row({"backing-store writes", fmt_si(writes) + " /s", "~802K /s"});
  table.add_row({"Redis-class cores needed",
                 fmt_double(stores.cores_needed(writes), 2),
                 "a few (100s of K ops/s/core)"});
  table.print();

  std::printf("\nfeasible: %s (writes/s within a handful of store cores)\n",
              stores.cores_needed(writes) < 16.0 ? "YES" : "NO");
  return 0;
}
