// Shared helpers for the figure-regeneration benches.
//
// Scale: the paper's trace is 157 M packets / 3.8 M flows. The benches run a
// scaled-down synthetic trace (PERFQ_SCALE, default 1/32) and scale the cache
// sizes by the same factor, which preserves the cache-pairs : flows ratio
// that drives eviction behaviour. Every table prints both the scaled pair
// count and the equivalent full-scale cache size in Mbit so rows align with
// the paper's axes. Set PERFQ_SCALE=1 for a full-scale run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/config.hpp"

namespace perfq::bench {

inline double scale_from_env(double default_scale = 1.0 / 32.0) {
  if (const char* env = std::getenv("PERFQ_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
    std::fprintf(stderr, "PERFQ_SCALE '%s' invalid; using %.4f\n", env,
                 default_scale);
  }
  return default_scale;
}

/// The paper's CAIDA-like workload at the chosen scale.
inline trace::TraceConfig scaled_caida(double scale, std::uint64_t seed = 2016) {
  trace::TraceConfig c = trace::TraceConfig::caida_like().scaled(scale);
  c.seed = seed;
  return c;
}

inline void print_scale_banner(const char* what, double scale,
                               const trace::TraceConfig& config) {
  std::printf(
      "# %s\n"
      "# scale=%.5f: ~%.2fM flows, ~%.1fM packets over %.0f s "
      "(paper: 3.8M flows, 157M packets; set PERFQ_SCALE=1 to match)\n",
      what, scale, static_cast<double>(config.num_flows) / 1e6,
      config.expected_packets() / 1e6, to_seconds(config.duration));
}

}  // namespace perfq::bench
