// Figure 2: the expressiveness table. Every example query from the paper is
// written in the query language, compiled, classified by the linear-in-state
// analyzer (the "Linear in state?" column), and executed end-to-end over a
// synthetic workload. The harness prints one row per query: classification
// (with the paper's expected value), result-table size, and processing rate.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "runtime/engine_builder.hpp"
#include "trace/flow_session.hpp"

namespace {

using namespace perfq;

struct Fig2Query {
  std::string name;
  std::string source;
  std::map<std::string, double> params;
  std::string paper_linearity;  // Fig. 2's column
};

std::vector<Fig2Query> fig2_queries() {
  return {
      {"Per-flow counters",
       "SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip",
       {},
       "Yes"},
      {"Latency EWMA",
       R"(def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, ewma GROUPBY 5tuple)",
       {{"alpha", 0.125}},
       "Yes"},
      {"TCP out of sequence",
       R"(def outofseq ((lastseq, oos_count), (tcpseq, payload_len)):
    if lastseq + 1 != tcpseq: oos_count = oos_count + 1
    lastseq = tcpseq + payload_len

SELECT 5tuple, outofseq GROUPBY 5tuple WHERE proto == TCP)",
       {},
       "Yes"},
      {"TCP non-monotonic",
       R"(def nonmt ((maxseq, nm_count), (tcpseq)):
    if maxseq > tcpseq: nm_count = nm_count + 1
    maxseq = max(maxseq, tcpseq)

SELECT 5tuple, nonmt GROUPBY 5tuple WHERE proto == TCP)",
       {},
       "No"},
      {"Per-flow high latency packets",
       R"(def sum_lat (lat, (tin, tout)): lat = lat + tout - tin

R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq
R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE lat > L)",
       {{"L", 3'000'000.0}},
       "Yes"},
      {"Per-flow loss rate",
       R"(R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON 5tuple)",
       {},
       "Yes"},
      {"High 99th percentile queue size",
       R"(def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

R1 = SELECT qid, perc GROUPBY qid
R2 = SELECT * FROM R1 WHERE perc.high / perc.tot > 0.01)",
       {{"K", 40.0}},
       "Yes"},
  };
}

std::string classify(const compiler::CompiledProgram& program) {
  // Worst (least mergeable) classification across the program's switch
  // queries; a program with no switch GROUPBY is trivially "Yes" (stateless).
  bool linear = true;
  for (const auto& plan : program.switch_plans) {
    if (plan.linearity == kv::Linearity::kNotLinear) linear = false;
  }
  return linear ? "Yes" : "No";
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env(1.0 / 256.0);
  trace::TraceConfig config = bench::scaled_caida(scale);
  config.duration = 30_s;  // expressiveness needs breadth, not trace length
  bench::print_scale_banner("Figure 2: query expressiveness table", scale,
                            config);

  TextTable table("Fig 2: example queries through the full pipeline");
  table.set_header({"query", "linear-in-state", "paper says", "switch stores",
                    "result rows", "Mpkts/s"});

  for (const auto& q : fig2_queries()) {
    auto program = compiler::compile_source(q.source, q.params);
    const std::string linearity = classify(program);

    const auto engine =
        runtime::EngineBuilder(std::move(program))
            .geometry(kv::CacheGeometry::set_associative(1u << 12, 8))
            .build();

    trace::FlowSessionGenerator gen(config);
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t packets = 0;
    while (auto rec = gen.next()) {
      engine->process(*rec);
      ++packets;
    }
    engine->finish(config.duration);
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    table.add_row({q.name, linearity, q.paper_linearity,
                   std::to_string(engine->program().switch_plans.size()),
                   std::to_string(engine->result().row_count()),
                   fmt_double(static_cast<double>(packets) / elapsed / 1e6, 2)});
    if (linearity != q.paper_linearity) {
      std::printf("!! classification mismatch for '%s'\n", q.name.c_str());
    }
  }

  table.print();
  std::printf(
      "# Matches Fig. 2 iff every row's classification equals the paper's "
      "column (only 'TCP non-monotonic' is No).\n");
  return 0;
}
