// Figure 6: accuracy for a query that is NOT linear in state, vs. cache size
// and query interval (1/3/5 minutes), on the 8-way associative cache.
//
// Query: Fig. 2's "TCP non-monotonic" (the paper's one non-linear example).
// A key is *valid* within a window when a single value segment covers the
// window (§3.2); accuracy = % valid keys, averaged over the window count.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/kvstore.hpp"
#include "trace/flow_session.hpp"

namespace {

using namespace perfq;

/// Windowed run: restart the store at every `window` boundary; report the
/// key-weighted average validity across windows.
double windowed_accuracy(const trace::TraceConfig& config,
                         kv::CacheGeometry geometry, Nanos window) {
  auto kernel = std::make_shared<kv::NonMonotonicKernel>();
  auto store = std::make_unique<kv::KeyValueStore>(geometry, kernel);
  trace::FlowSessionGenerator gen(config);

  std::uint64_t valid = 0;
  std::uint64_t total = 0;
  Nanos boundary = window;
  auto close_window = [&](Nanos now) {
    store->flush(now);
    const kv::AccuracyStats acc = store->backing().accuracy();
    valid += acc.valid_keys;
    total += acc.total_keys;
    store = std::make_unique<kv::KeyValueStore>(geometry, kernel);
  };

  while (auto rec = gen.next()) {
    while (rec->tin > boundary) {
      close_window(boundary);
      boundary += window;
    }
    if (rec->pkt.flow.proto != static_cast<std::uint8_t>(IpProto::kTcp)) {
      continue;  // WHERE proto == TCP
    }
    const auto bytes = rec->pkt.flow.to_bytes();
    store->process(
        kv::Key{std::span<const std::byte>{bytes.data(), bytes.size()}}, *rec);
  }
  close_window(config.duration);
  return total == 0 ? 1.0 : static_cast<double>(valid) / static_cast<double>(total);
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const trace::TraceConfig config = bench::scaled_caida(scale);
  bench::print_scale_banner(
      "Figure 6: accuracy of the non-linear 'TCP non-monotonic' query", scale,
      config);

  constexpr int kBitsPerPair = 128;
  TextTable table("Fig 6: % valid keys, 8-way cache");
  table.set_header({"cache (Mbit, full-scale)", "pairs (scaled)", "1 min",
                    "3 min", "5 min"});

  double acc_1min_32 = 0.0;
  double acc_5min_32 = 0.0;
  for (int log2_pairs = 16; log2_pairs <= 21; ++log2_pairs) {
    const std::uint64_t full_pairs = 1ull << log2_pairs;
    auto scaled_pairs = static_cast<std::uint64_t>(
        static_cast<double>(full_pairs) * scale);
    scaled_pairs = std::max<std::uint64_t>(scaled_pairs - scaled_pairs % 8, 8);
    const auto geometry = kv::CacheGeometry::set_associative(scaled_pairs, 8);

    const double a1 = windowed_accuracy(config, geometry, 60_s);
    const double a3 = windowed_accuracy(config, geometry, 180_s);
    const double a5 = windowed_accuracy(config, geometry, 300_s);
    table.add_row({fmt_double(kv::mbits_for_pairs(full_pairs, kBitsPerPair), 0),
                   std::to_string(scaled_pairs), fmt_percent(a1, 1),
                   fmt_percent(a3, 1), fmt_percent(a5, 1)});
    if (log2_pairs == 18) {
      acc_1min_32 = a1;
      acc_5min_32 = a5;
    }
  }

  table.print();
  std::printf(
      "# 32-Mbit checkpoint: 5-min accuracy %.0f%%, 1-min accuracy %.0f%% "
      "(paper: 74%% -> 84%%); shorter windows must not reduce accuracy\n",
      acc_5min_32 * 100.0, acc_1min_32 * 100.0);
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
