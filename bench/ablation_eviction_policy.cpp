// Ablation: what does LRU buy? (DESIGN.md design decision 3)
//
// The paper chooses in-bucket LRU (§3.2, Fig. 4) but notes the choice only
// in passing. LRU needs a touch-on-hit update path in SRAM; FIFO and random
// replacement are cheaper. This bench quantifies the eviction-rate cost of
// the cheaper policies across geometries at the paper's 32-Mbit design
// point and across the size sweep — if LRU were not meaningfully better,
// the hardware could drop the update path.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/cache.hpp"
#include "trace/flow_session.hpp"

namespace {

using namespace perfq;

double eviction_fraction(const trace::TraceConfig& config,
                         kv::CacheGeometry geometry, kv::EvictionPolicy policy) {
  auto kernel = std::make_shared<kv::CountKernel>();
  kv::Cache cache(geometry, kernel, 0x5eedcafe, policy);
  cache.set_eviction_sink({});
  trace::FlowSessionGenerator gen(config);
  while (auto rec = gen.next()) {
    const auto bytes = rec->pkt.flow.to_bytes();
    cache.process(
        kv::Key{std::span<const std::byte>{bytes.data(), bytes.size()}}, *rec);
  }
  return cache.stats().eviction_fraction();
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env(1.0 / 64.0);
  const trace::TraceConfig config = bench::scaled_caida(scale);
  bench::print_scale_banner("Ablation: in-bucket eviction policy", scale,
                            config);

  TextTable table("Eviction fraction by replacement policy (8-way cache)");
  table.set_header(
      {"cache (Mbit, full-scale)", "LRU (paper)", "FIFO", "random"});
  for (int log2_pairs = 16; log2_pairs <= 20; ++log2_pairs) {
    const std::uint64_t full_pairs = 1ull << log2_pairs;
    auto pairs =
        static_cast<std::uint64_t>(static_cast<double>(full_pairs) * scale);
    pairs = std::max<std::uint64_t>(pairs - pairs % 8, 8);
    const auto geom = kv::CacheGeometry::set_associative(pairs, 8);
    table.add_row(
        {fmt_double(kv::mbits_for_pairs(full_pairs, 128), 0),
         fmt_percent(eviction_fraction(config, geom, kv::EvictionPolicy::kLru)),
         fmt_percent(eviction_fraction(config, geom, kv::EvictionPolicy::kFifo)),
         fmt_percent(
             eviction_fraction(config, geom, kv::EvictionPolicy::kRandom))});
  }
  table.print();

  std::printf(
      "\nExpected shape: LRU <= random <= FIFO-ish; the gap narrows as the\n"
      "cache grows (when everything fits, policy stops mattering). If the\n"
      "LRU advantage at the 32-Mbit point is small, a touch-free policy is\n"
      "a defensible hardware simplification.\n");
  return 0;
}
