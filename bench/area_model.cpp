// §3.3 / §4 "Cache memory size": the SRAM area feasibility table.
//
// Regenerates the paper's claims: a 32-Mbit cache costs < 2.5% of a 200 mm^2
// die at 7000 Kb/mm^2 SRAM density, while holding all 3.8 M trace flows
// on-chip would need ~486 Mbit (~38% of the die) — and grows without bound
// in an always-on system, which is the argument for the split design.
#include <cstdio>

#include "analysis/area_model.hpp"
#include "common/table.hpp"
#include "kvstore/geometry.hpp"

int main() {
  using namespace perfq;
  const analysis::AreaModel model;
  constexpr int kBitsPerPair = 128;

  TextTable table("SRAM area model (7000 Kb/mm^2 density, 200 mm^2 die)");
  table.set_header({"cache (Mbit)", "pairs", "SRAM mm^2", "% of die"});
  for (const double mbits : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 486.0}) {
    table.add_row({fmt_double(mbits, 0),
                   fmt_si(static_cast<double>(
                       kv::pairs_for_mbits(mbits, kBitsPerPair))),
                   fmt_double(model.sram_mm2(mbits), 2),
                   fmt_percent(model.area_fraction(mbits), 2)});
  }
  table.print();

  const double all_flows_mbits =
      analysis::AreaModel::required_mbits(3'800'000, kBitsPerPair);
  std::printf(
      "\nPaper checkpoints:\n"
      "  32-Mbit cache:       %.2f%% of die   (paper: < 2.5%%)\n"
      "  all 3.8M flows:      %.0f Mbit => %.0f%% of die  (paper: 486 Mbit, "
      "38%%)\n",
      model.area_fraction(32.0) * 100.0, all_flows_mbits,
      model.area_fraction(all_flows_mbits) * 100.0);
  return 0;
}
